#include "mgsp/mgsp_fs.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/align.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/trace.h"
#include "mgsp/backoff.h"

namespace mgsp {

/** File handle bound to an OpenInode. */
class MgspFile : public File
{
  public:
    MgspFile(MgspFs *fs, MgspFs::OpenInode *inode) : fs_(fs), inode_(inode)
    {
    }

    ~MgspFile() override { fs_->releaseHandle(inode_); }

    StatusOr<u64>
    pread(u64 offset, MutSlice dst) override
    {
        return fs_->doRead(inode_, offset, dst);
    }

    Status
    pwrite(u64 offset, ConstSlice src) override
    {
        return fs_->doWrite(inode_, offset, src);
    }

    /**
     * Vectored write as ONE failure-atomic commit: the spans are laid
     * end to end at @p offset and routed through writeBatch, so a
     * crash leaves either none or all of them. Requests writeBatch
     * cannot express (more bitmap slots than one metadata-log entry
     * holds) fall back to the span-by-span default, which is still
     * atomic per span.
     */
    Status
    pwritev(u64 offset, const std::vector<ConstSlice> &spans) override
    {
        std::vector<BatchWrite> batch;
        batch.reserve(spans.size());
        u64 pos = offset;
        for (const ConstSlice &s : spans) {
            if (!s.empty())
                batch.push_back({pos, s});
            pos += s.size();
        }
        if (batch.empty())
            return Status::ok();
        Status s = fs_->writeBatch(this, batch);
        if (s.code() == StatusCode::InvalidArgument)
            return File::pwritev(offset, spans);
        return s;
    }

    /**
     * Every MGSP operation is already synchronously durable; with the
     * cleaner enabled this is additionally a write-back barrier.
     */
    Status sync() override { return fs_->syncFile(inode_); }

    /**
     * Ranged durability point (the mgsp_msync surface): a degenerate
     * single-file transaction over [offset, offset+len). See
     * MgspFs::doRangeSync for why this is one fence (or an epoch
     * commit) rather than a full sync barrier.
     */
    Status
    rangeSync(u64 offset, u64 len) override
    {
        return fs_->doRangeSync(inode_, offset, len);
    }

    /**
     * Per-file read-cache steering (vfs AccessHint semantics). The
     * hint is shared by every handle on the file, like
     * posix_fadvise. DontCache additionally drops the file's
     * already-resident frames so "stop caching this" takes effect
     * immediately, not at eviction.
     */
    Status
    advise(AccessHint hint) override
    {
        inode_->accessHint.store(static_cast<u8>(hint),
                                 std::memory_order_relaxed);
        if (hint == AccessHint::DontCache && fs_->cache_ != nullptr)
            fs_->cache_->dropFile(inode_->inodeIdx);
        return Status::ok();
    }

    u64
    size() const override
    {
        return inode_->fileSize.load(std::memory_order_acquire);
    }

    /** This file's fence state (vfs health surface; lock-free). */
    FileHealthState
    health() const override
    {
        return MgspFs::inodeHealth(inode_);
    }

    Status
    truncate(u64 new_size) override
    {
        return fs_->doTruncate(inode_, new_size);
    }

    MgspFs::OpenInode *inode() { return inode_; }
    MgspFs *owner() { return fs_; }

  private:
    MgspFs *fs_;
    MgspFs::OpenInode *inode_;
};

/**
 * Cross-file transaction handle (vfs FileTxn, DESIGN.md §17).
 * Staging is pure DRAM — pwrite() copies the bytes, so nothing
 * touches NVM until commit() runs the two-phase protocol in
 * MgspFs::txnCommit. Participant File handles must stay open for the
 * handle's lifetime (staging holds their OpenInode pointers, exactly
 * like writeBatch holding a File*).
 */
class MgspTxn : public FileTxn
{
  public:
    explicit MgspTxn(MgspFs *fs) : fs_(fs) {}

    ~MgspTxn() override
    {
        // Destruction before commit() discards the staged writes —
        // an implicit abort, counted as one.
        if (!spent_ && !writes_.empty())
            fs_->txnCounters_.aborts->add(1);
    }

    Status
    pwrite(File *file, u64 offset, ConstSlice src) override
    {
        if (spent_)
            return Status::invalidArgument("transaction already spent");
        auto *mf = dynamic_cast<MgspFile *>(file);
        if (mf == nullptr || mf->owner() != fs_)
            return Status::invalidArgument(
                "txn participant is not a file of this file system");
        if (src.empty())
            return Status::invalidArgument("empty txn write");
        MgspFs::TxnWrite w;
        w.inode = mf->inode();
        w.offset = offset;
        w.data.assign(src.data(), src.data() + src.size());
        writes_.push_back(std::move(w));
        return Status::ok();
    }

    Status
    commit() override
    {
        if (spent_)
            return Status::invalidArgument("transaction already spent");
        spent_ = true;
        if (writes_.empty())
            return Status::ok();
        return fs_->txnCommit(writes_);
    }

    Status
    abort() override
    {
        if (spent_)
            return Status::invalidArgument("transaction already spent");
        spent_ = true;
        if (!writes_.empty())
            fs_->txnCounters_.aborts->add(1);
        writes_.clear();
        return Status::ok();
    }

  private:
    MgspFs *fs_;
    std::vector<MgspFs::TxnWrite> writes_;
    bool spent_ = false;
};

MgspFs::MgspFs(std::shared_ptr<PmemDevice> device, const MgspConfig &config)
    : device_(std::move(device)), config_(config),
      statsOn_(config.enableStats && stats::enabled()),
      cleanerOn_(config.enableCleaner && config.enableShadowLog),
      optimisticOn_(config.enableOptimisticReads &&
                    config.lockMode == LockMode::Mgl &&
                    config.enableShadowLog),
      greedyOn_(config.enableGreedyLocking &&
                !(config.enableCleaner && config.enableShadowLog) &&
                !config.enableEpochSync),
      epochOn_(config.enableEpochSync && config.enableShadowLog),
      healthOn_(config.enableHealthFencing && config.enableShadowLog),
      healthReg_(config.maxInodes, std::max<u32>(config.inodeFaultBudget, 1))
{
    if (optimisticOn_) {
        auto &reg = stats::StatsRegistry::instance();
        readCounters_.optimistic = &reg.counter("read.optimistic");
        readCounters_.retry = &reg.counter("read.retry");
        readCounters_.fallback = &reg.counter("read.fallback");
    }
    // Frame validation needs the same per-node version signal the
    // optimistic read path rides, so the cache shares its gate.
    cacheOn_ = config.cacheBytes > 0 && optimisticOn_;
    if (cacheOn_) {
        cache_ = std::make_unique<PageCache>(
            config.cacheBytes, config.leafBlockSize, config.maxInodes);
        if (!cache_->enabled()) {  // budget below one frame
            cache_.reset();
            cacheOn_ = false;
        }
    }
    if (cleanerOn_) {
        auto &reg = stats::StatsRegistry::instance();
        cleanCounters_.ranges = &reg.counter("clean.ranges");
        cleanCounters_.cycles = &reg.counter("clean.cycles");
        cleanCounters_.syncBarriers = &reg.counter("clean.sync_barriers");
        cleanCounters_.watermarkTriggers =
            &reg.counter("clean.watermark_triggers");
        cleanCounters_.oomRetries = &reg.counter("clean.oom_retries");
        cleanCounters_.bytesWrittenBack =
            &reg.counter("clean.bytes_written_back");
        cleanCounters_.blocksReclaimed =
            &reg.counter("clean.blocks_reclaimed");
        cleanCounters_.bytesReclaimed =
            &reg.counter("clean.bytes_reclaimed");
        cleanCounters_.recordsReclaimed =
            &reg.counter("clean.records_reclaimed");
    }
    {
        auto &reg = stats::StatsRegistry::instance();
        faultCounters_.mediaRetries = &reg.counter("read.media_retries");
        faultCounters_.scrubPasses = &reg.counter("scrub.passes");
        faultCounters_.scrubUnitsVerified =
            &reg.counter("scrub.units_verified");
        faultCounters_.scrubCrcMismatches =
            &reg.counter("scrub.crc_mismatches");
        faultCounters_.scrubPoisonSkipped =
            &reg.counter("scrub.poison_skipped");
    }
    if (epochOn_) {
        auto &reg = stats::StatsRegistry::instance();
        epochCounters_.commits = &reg.counter("epoch.commits");
        epochCounters_.fastCommits = &reg.counter("epoch.fast_commits");
        epochCounters_.inodesCommitted =
            &reg.counter("epoch.inodes_committed");
        epochCounters_.slotsFlushed = &reg.counter("epoch.slots_flushed");
        epochCounters_.autoFlushes = &reg.counter("epoch.auto_flushes");
        epochCounters_.finalizes = &reg.counter("epoch.finalizes");
        policyCounters_.evaluations = &reg.counter("policy.evaluations");
        policyCounters_.toWriteThrough =
            &reg.counter("policy.to_write_through");
        policyCounters_.toShadow = &reg.counter("policy.to_shadow");
        policyCounters_.writeBackBytes =
            &reg.counter("policy.write_back_bytes");
        // The budget keeps one participant's accumulator re-splittable
        // into the E-2 data entries of a single commit chunk: an op
        // may overshoot the trigger by up to kStageSlots staged slots
        // before the auto-commit fires, so that headroom is carved out
        // of the raw (E-2)*kMaxSlots log capacity up front.
        const u64 raw = static_cast<u64>(config.metaLogEntries - 2) *
                        MetaLogEntry::kMaxSlots;
        const u64 derived =
            raw > StagedMetadata::kStageSlots
                ? raw - StagedMetadata::kStageSlots
                : 1;
        epochBudget_ = config.epochMaxSlots != 0
                           ? std::min<u64>(config.epochMaxSlots, derived)
                           : derived;
    }
    {
        // Unconditional: recovery bumps recovered/discarded on every
        // mount, whatever the config.
        auto &reg = stats::StatsRegistry::instance();
        txnCounters_.prepares = &reg.counter("txn.prepares");
        txnCounters_.commits = &reg.counter("txn.commits");
        txnCounters_.aborts = &reg.counter("txn.aborts");
        txnCounters_.recovered = &reg.counter("txn.recovered");
        txnCounters_.discarded = &reg.counter("txn.discarded");
    }
    {
        auto &reg = stats::StatsRegistry::instance();
        resourceCounters_.allocFail = &reg.counter("alloc.fail");
        resourceCounters_.allocRetry = &reg.counter("alloc.retry");
        resourceCounters_.backoffNanos = &reg.counter("alloc.backoff_ns");
        resourceCounters_.degradedEnter = &reg.counter("degraded.enter");
        resourceCounters_.degradedExit = &reg.counter("degraded.exit");
        resourceCounters_.degradedBytes = &reg.counter("degraded.bytes");
        resourceCounters_.watchdogTrips = &reg.counter("watchdog.trips");
    }
    {
        // Unconditional, like the txn counters: mount bumps the
        // found-fenced/condemned tallies whatever the config says.
        auto &reg = stats::StatsRegistry::instance();
        healthCounters_.faultsRecorded =
            &reg.counter("health.faults_recorded");
        healthCounters_.inodeFences = &reg.counter("health.inode_fences");
        healthCounters_.inodeUnfences =
            &reg.counter("health.inode_unfences");
        healthCounters_.repairsOk = &reg.counter("health.repairs_ok");
        healthCounters_.repairsFailed =
            &reg.counter("health.repairs_failed");
        healthCounters_.condemned = &reg.counter("health.condemned");
        healthCounters_.engineDegraded =
            &reg.counter("health.engine_degraded");
        healthCounters_.engineReadOnly =
            &reg.counter("health.engine_readonly");
        healthCounters_.verifiedReads =
            &reg.counter("health.verified_reads");
        healthCounters_.rejectedReads =
            &reg.counter("health.rejected_reads");
    }
}

MgspFs::~MgspFs()
{
    stopCleaner();
    Status s = writeBackAllFiles();
    if (!s.isOk())
        MGSP_WARN("writeback on unmount failed: %s", s.toString().c_str());
}

std::vector<PoolClassConfig>
MgspFs::poolClasses() const
{
    // One class per interior-log granularity, from the leaf size up
    // to the coarse-log cap. The leaf class gets half the pool; the
    // coarser classes share the rest evenly.
    std::vector<u64> sizes;
    for (u64 s = config_.leafBlockSize; s <= config_.maxCoarseLogSize;
         s *= config_.degree)
        sizes.push_back(s);
    // Each class region can lose up to one cell of alignment padding;
    // reserve that headroom so the pool never overflows its region.
    u64 padding = 0;
    for (u64 s : sizes)
        padding += s;
    MGSP_CHECK(layout_.poolBytes > padding);
    const u64 pool = layout_.poolBytes - padding;
    std::vector<PoolClassConfig> classes;
    if (sizes.size() == 1) {
        classes.push_back({sizes[0], pool});
        return classes;
    }
    // Equal split: the worst case for any class is one log block per
    // node of the file at that granularity, i.e. ~file-size bytes per
    // class regardless of granularity.
    const u64 share = pool / sizes.size();
    for (u64 size : sizes)
        classes.push_back({size, share});
    return classes;
}

Status
MgspFs::initLayout(bool fresh)
{
    layout_ = ArenaLayout::compute(config_);
    if (layout_.fileAreaOff >= device_->size())
        return Status::invalidArgument("arena too small for layout");
    nodeTable_ = std::make_unique<NodeTable>(device_.get(), layout_,
                                             config_.maxNodeRecords);
    pool_ = std::make_unique<PmemPool>(layout_.poolOff, poolClasses());
    if (pool_->end() > layout_.fileAreaOff)
        return Status::internal("pool overflows its region");
    metaLog_ = std::make_unique<MetadataLog>(
        device_.get(), layout_, config_.metaLogEntries,
        config_.enablePartialMetaFlush);

    if (fresh) {
        // Zero the metadata regions and publish both superblock
        // copies (epoch 1 after the persistSuperblock bump).
        device_->fill(0, 0, layout_.poolOff);
        sb_ = Superblock{};
        sb_.magic = Superblock::kMagic;
        sb_.arenaSize = device_->size();
        sb_.leafBlockSize = config_.leafBlockSize;
        sb_.degree = config_.degree;
        sb_.leafSubBits = config_.leafSubBits;
        sb_.metaLogEntries = config_.metaLogEntries;
        sb_.maxInodes = config_.maxInodes;
        sb_.maxNodeRecords = config_.maxNodeRecords;
        sb_.inodeTableOff = layout_.inodeTableOff;
        sb_.metaLogOff = layout_.metaLogOff;
        sb_.nodeTableOff = layout_.nodeTableOff;
        sb_.poolOff = layout_.poolOff;
        sb_.poolBytes = layout_.poolBytes;
        sb_.fileAreaOff = layout_.fileAreaOff;
        sb_.fileAreaBytes = layout_.fileAreaBytes;
        sb_.fileAreaBump = layout_.fileAreaOff;
        sb_.epoch = 0;
        persistSuperblock();
    }
    return Status::ok();
}

void
MgspFs::persistSuperblock()
{
    // A dual-copy-loss mount runs on reconstructed geometry that only
    // exists in DRAM; never write either rotten slot again.
    if (!sbWritable_)
        return;
    ++sb_.epoch;
    sb_.checksum = sb_.computeChecksum();
    // Secondary first: if the crash lands mid-primary-rewrite, the
    // secondary already carries the new epoch and salvage mounts from
    // it; if it lands mid-secondary-rewrite, the primary is intact.
    for (u32 slot = Superblock::kSlots; slot-- > 0;) {
        device_->write(Superblock::slotOff(slot), &sb_, sizeof(sb_));
        device_->persist(Superblock::slotOff(slot), sizeof(sb_));
    }
}

StatusOr<std::unique_ptr<MgspFs>>
MgspFs::format(std::shared_ptr<PmemDevice> device, const MgspConfig &config)
{
    if (!config.valid())
        return Status::invalidArgument("invalid MGSP configuration");
    if (config.arenaSize != device->size())
        return Status::invalidArgument("config.arenaSize != device size");
    std::unique_ptr<MgspFs> fs(new MgspFs(std::move(device), config));
    MGSP_RETURN_IF_ERROR(fs->initLayout(/*fresh=*/true));
    fs->initEpochLog();
    fs->startCleaner();
    return fs;
}

StatusOr<std::unique_ptr<MgspFs>>
MgspFs::mount(std::shared_ptr<PmemDevice> device, const MgspConfig &config)
{
    if (device->size() < Superblock::kSlots * Superblock::kSlotStride)
        return Status::corruption(
            "arena truncated below the superblock region");
    Superblock copies[Superblock::kSlots];
    for (u32 i = 0; i < Superblock::kSlots; ++i)
        device->read(Superblock::slotOff(i), &copies[i],
                     sizeof(Superblock));

    Superblock sb;
    bool recovered = false;
    bool sb_lost = false;  ///< both copies rotten; geometry from config
    if (config.recoveryMode == RecoveryMode::Strict) {
        // Fail-fast: the primary copy must stand on its own.
        if (copies[0].magic != Superblock::kMagic)
            return Status::corruption("bad superblock magic");
        if (!copies[0].validCopy())
            return Status::corruption("superblock checksum mismatch");
        sb = copies[0];
    } else {
        // Salvage: any valid copy will do; highest epoch wins.
        int best = -1;
        for (u32 i = 0; i < Superblock::kSlots; ++i) {
            if (!copies[i].validCopy())
                continue;
            if (device->poisoned(Superblock::slotOff(i),
                                 sizeof(Superblock)))
                continue;
            if (best < 0 || copies[i].epoch > copies[best].epoch)
                best = static_cast<int>(i);
        }
        if (best < 0) {
            // Both copies rotten. Without health fencing that is the
            // end of the road; with it the engine contains the fault
            // instead: rebuild the (geometry-checked) superblock from
            // the config, serve reads, and refuse every mutation —
            // the arena's data is still intact, only the 128-byte
            // header died, and aborting would strand all of it.
            if (!config.enableHealthFencing)
                return Status::corruption("no valid superblock copy");
            const ArenaLayout lay = ArenaLayout::compute(config);
            sb = Superblock{};
            sb.magic = Superblock::kMagic;
            sb.arenaSize = device->size();
            sb.leafBlockSize = config.leafBlockSize;
            sb.degree = config.degree;
            sb.leafSubBits = config.leafSubBits;
            sb.metaLogEntries = config.metaLogEntries;
            sb.maxInodes = config.maxInodes;
            sb.maxNodeRecords = config.maxNodeRecords;
            sb.inodeTableOff = lay.inodeTableOff;
            sb.metaLogOff = lay.metaLogOff;
            sb.nodeTableOff = lay.nodeTableOff;
            sb.poolOff = lay.poolOff;
            sb.poolBytes = lay.poolBytes;
            sb.fileAreaOff = lay.fileAreaOff;
            sb.fileAreaBytes = lay.fileAreaBytes;
            // Recovery's max-extent scan corrects the bump from the
            // live inode records (volatile only: nothing persists).
            sb.fileAreaBump = lay.fileAreaOff;
            sb_lost = true;
        } else {
            sb = copies[best];
            recovered = best != 0 || !copies[0].validCopy();
        }
    }

    // A valid superblock describing an arena larger than the device
    // means the backing file was truncated after format.
    if (sb.arenaSize > device->size())
        return Status::corruption(
            "arena truncated below the formatted size");
    if (sb.leafBlockSize != config.leafBlockSize ||
        sb.degree != config.degree ||
        sb.leafSubBits != config.leafSubBits ||
        sb.metaLogEntries != config.metaLogEntries ||
        sb.maxInodes != config.maxInodes ||
        sb.maxNodeRecords != config.maxNodeRecords ||
        sb.arenaSize != device->size()) {
        return Status::invalidArgument(
            "config geometry does not match the on-media superblock");
    }
    std::unique_ptr<MgspFs> fs(new MgspFs(std::move(device), config));
    MGSP_RETURN_IF_ERROR(fs->initLayout(/*fresh=*/false));
    fs->sb_ = sb;
    fs->recovery_.superblockRecovered = recovered || sb_lost;
    if (sb_lost) {
        // Neither slot holds trustworthy bytes any more, so the engine
        // never writes either again: the reconstructed geometry lives
        // only in DRAM, and every superblock persist below and in
        // recovery is skipped.
        fs->sbWritable_ = false;
        fs->escalateEngine(HealthState::ReadOnly,
                           "both superblock copies lost; geometry "
                           "reconstructed from config");
    } else if ((sb.healthFlags & Superblock::kHealthReadOnly) != 0) {
        fs->escalateEngine(HealthState::ReadOnly,
                           "persistent read-only flag set by a prior "
                           "mount");
    }
    if (recovered)
        fs->persistSuperblock();  // repair the losing copy in place
    MGSP_RETURN_IF_ERROR(fs->runRecovery());
    // Mount-time aggregate signals (DESIGN.md §18): a repaired
    // superblock copy or salvage scars degrade the engine so
    // operators see the scare in health() even though every caller-
    // visible contract still holds.
    if (fs->healthOn_) {
        if (recovered)
            fs->escalateEngine(HealthState::Degraded,
                               "one superblock copy was lost and "
                               "repaired at mount");
        if (fs->recovery_.corruptRecordsQuarantined != 0 ||
            fs->recovery_.poisonedRangesSkipped != 0)
            fs->escalateEngine(HealthState::Degraded,
                               "salvage quarantined state at mount");
        if (fs->recovery_.condemnedInodesFound != 0)
            fs->escalateEngine(HealthState::ReadOnly,
                               "mounted with condemned files");
    }
    fs->initEpochLog();
    fs->startCleaner();
    return fs;
}

Status
MgspFs::runRecovery()
{
    Stopwatch timer;
    stats::OpTrace trace(stats::OpType::Recovery, 0, 0, statsOn_);
    trace.stage(stats::Stage::Recovery);
    const bool salvage = config_.recoveryMode == RecoveryMode::Salvage;

    // Strict mode refuses to recover over poisoned metadata: every
    // structure below poolOff is load-bearing for consistency, and
    // fail-fast beats guessing. Salvage skips the poisoned slots
    // below, structure by structure.
    if (!salvage && device_->poisoned(0, layout_.poolOff))
        return Status::mediaError(
            "metadata region carries unrecovered media errors");

    // 1. Redo committed-but-unfinished operations from the metadata
    //    log (idempotent: slots store absolute bitmap words). Entries
    //    arrive checksum-validated from scanLive, so an out-of-range
    //    index here means corruption the checksum failed to catch.
    //    Plain entries replay independently; epoch-flagged entries
    //    replay as ordered all-or-nothing groups (DESIGN.md §15),
    //    regardless of whether this mount enables epoch sync.
    std::vector<MetadataLog::LiveEntry> live = metaLog_->scanLive();
    auto entryInBounds = [&](const MetaLogEntry &e) {
        if (e.inode >= config_.maxInodes)
            return false;
        for (u32 i = 0; i < e.usedSlots; ++i)
            if (e.slots[i].recIdx >= config_.maxNodeRecords)
                return false;
        return true;
    };
    auto replayEntry = [&](const MetaLogEntry &e) {
        for (u32 i = 0; i < e.usedSlots; ++i)
            nodeTable_->storeBitmap(e.slots[i].recIdx, e.slots[i].newBits);
        const u64 size_off =
            layout_.inodeOff(e.inode) + offsetof(InodeRecord, fileSize);
        if (device_->load64(size_off) < e.newFileSize) {
            device_->store64(size_off, e.newFileSize);
            device_->flush(size_off, 8);
        }
    };

    /// One epoch id's live entries: data members, the commit record,
    /// and self-contained single-inode epochs (Data|Commit).
    struct EpochGroup
    {
        std::vector<const MetadataLog::LiveEntry *> data;
        std::vector<const MetadataLog::LiveEntry *> singles;
        const MetadataLog::LiveEntry *record = nullptr;
        bool dupRecord = false;
    };
    // Ordered ascending by epoch id (the checksummed `offset` field):
    // later epochs' words must win when stale lazily-retired entries
    // of an earlier epoch touch the same records.
    std::map<u64, EpochGroup> epochs;

    // Cross-file txn prepares (DESIGN.md §17), grouped by the shared
    // txn id riding in the checksummed offset field. Partitioned out
    // FIRST: a prepare replays only if its txn's commit record
    // landed, never unconditionally.
    std::map<u64, std::vector<const MetadataLog::LiveEntry *>> txns;

    for (const MetadataLog::LiveEntry &op : live) {
        if (op.entry.flags & MetaLogEntry::kFlagTxnPrepare) {
            txns[op.entry.offset].push_back(&op);
            continue;
        }
        const u16 eflags =
            op.entry.flags & (MetaLogEntry::kFlagEpochData |
                              MetaLogEntry::kFlagEpochCommit);
        if (eflags == 0) {
            if (!entryInBounds(op.entry)) {
                if (!salvage)
                    return Status::corruption(
                        "metadata slot out of range");
                ++recovery_.corruptRecordsQuarantined;
                continue;  // unreplayed = the op never happened
            }
            replayEntry(op.entry);
            ++recovery_.liveEntriesReplayed;
            continue;
        }
        EpochGroup &g = epochs[op.entry.offset];
        if (eflags == MetaLogEntry::kFlagEpochCommit) {
            if (g.record != nullptr)
                g.dupRecord = true;
            else
                g.record = &op;
        } else if (eflags == MetaLogEntry::kFlagEpochData) {
            g.data.push_back(&op);
        } else {
            g.singles.push_back(&op);
        }
    }

    for (auto &[epoch_id, g] : epochs) {
        (void)epoch_id;
        // Bounds rot anywhere in the group quarantines the WHOLE
        // group: replaying a subset would tear the epoch's atomicity.
        bool bounds_ok = true;
        for (const auto *e : g.singles)
            bounds_ok = bounds_ok && entryInBounds(e->entry);
        for (const auto *e : g.data)
            bounds_ok = bounds_ok && entryInBounds(e->entry);
        if (!bounds_ok) {
            if (!salvage)
                return Status::corruption("epoch slot out of range");
            recovery_.corruptRecordsQuarantined += static_cast<u32>(
                g.singles.size() + g.data.size() +
                (g.record != nullptr ? 1 : 0));
            continue;
        }
        // Self-contained epochs (Data|Commit in one entry) are
        // complete by construction.
        for (const auto *e : g.singles) {
            replayEntry(e->entry);
            ++recovery_.epochsReplayed;
        }
        if (g.record == nullptr) {
            // Data entries whose commit record never landed: the
            // epoch never committed. A normal crash outcome, so the
            // discard is silent even in strict mode.
            if (!g.data.empty())
                ++recovery_.epochsDiscarded;
            continue;
        }
        // The record commits only after its full data set is fenced
        // durable, so any count mismatch (or a duplicated record) is
        // genuine corruption, not a crash shape.
        if (g.dupRecord ||
            g.record->entry.length !=
                1 + static_cast<u32>(g.data.size())) {
            if (!salvage)
                return Status::corruption(
                    "epoch commit record does not match its data "
                    "entries");
            recovery_.corruptRecordsQuarantined +=
                static_cast<u32>(g.data.size() + 1);
            continue;
        }
        for (const auto *e : g.data)
            replayEntry(e->entry);
        ++recovery_.epochsReplayed;
    }

    // Cross-file transactions: scan the dual-copy commit-record
    // region, then complete every committed txn (record present and
    // the full prepare set live) and discard the rest.
    std::map<u64, u32> committed;  ///< txn id -> recorded participants
    for (u32 slot = 0; slot < TxnCommitRecord::kSlots; ++slot) {
        for (u32 copy = 0; copy < TxnCommitRecord::kCopies; ++copy) {
            const u64 off = layout_.txnSlotOff(slot, copy);
            if (salvage &&
                device_->poisoned(off, sizeof(TxnCommitRecord))) {
                ++recovery_.poisonedRangesSkipped;
                continue;  // the other copy may still commit the txn
            }
            TxnCommitRecord rec;
            device_->read(off, &rec, sizeof(rec));
            if (rec.validCopy()) {
                committed[rec.txnId] = rec.participants;
                break;
            }
        }
    }
    for (auto &[txn_id, prepares] : txns) {
        auto it = committed.find(txn_id);
        if (it == committed.end()) {
            // Prepares whose commit record never landed (or whose
            // record was already retired, with the applies durable):
            // the txn contributes nothing. A normal crash outcome,
            // silent even in strict mode.
            ++recovery_.txnsDiscarded;
            txnCounters_.discarded->add(1);
            continue;
        }
        // The record commits only after its full prepare set is
        // fenced durable, and it retires before any prepare is
        // outdated — so bounds rot or a count mismatch is genuine
        // corruption, never a crash shape. All-or-nothing: a partial
        // replay would tear the txn's cross-file atomicity.
        bool bounds_ok = true;
        for (const auto *e : prepares)
            bounds_ok = bounds_ok && entryInBounds(e->entry);
        if (!bounds_ok ||
            it->second != static_cast<u32>(prepares.size())) {
            if (!salvage)
                return Status::corruption(
                    "txn commit record does not match its prepare "
                    "entries");
            ++recovery_.txnsQuarantined;
            recovery_.corruptRecordsQuarantined +=
                static_cast<u32>(prepares.size());
            committed.erase(it);
            continue;
        }
        for (const auto *e : prepares)
            replayEntry(e->entry);
        ++recovery_.txnsRecovered;
        txnCounters_.recovered->add(1);
        committed.erase(it);
    }
    for (auto &[txn_id, participants] : committed) {
        (void)txn_id;
        // A record with zero live prepares: record-present means no
        // prepare was retired yet, so the whole set rotted away.
        if (participants == 0)
            continue;  // zero-participant records cannot exist; skip
        if (!salvage)
            return Status::corruption(
                "txn commit record with no live prepare entries");
        ++recovery_.txnsQuarantined;
    }
    // The region is scratch between commits; scrub it so stale
    // records can never resurrect a future mount's txn id.
    device_->fill(layout_.txnRegionOff, 0,
                  TxnCommitRecord::regionBytes());
    device_->flush(layout_.txnRegionOff, TxnCommitRecord::regionBytes());

    device_->fence();
    metaLog_->resetAll();

    // 2. Rebuild pool occupancy and per-inode record lists from the
    //    node table. Coverage depends on the owning file's geometry.
    std::vector<InodeRecord> inodes(config_.maxInodes);
    std::vector<bool> inodeOk(config_.maxInodes, true);
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        if (salvage && device_->poisoned(layout_.inodeOff(i),
                                         sizeof(InodeRecord))) {
            // Unreadable inode slot: treat as absent. Its records
            // become orphans and its extent is left untouched.
            inodes[i] = InodeRecord{};
            inodeOk[i] = false;
            ++recovery_.poisonedRangesSkipped;
            continue;
        }
        device_->read(layout_.inodeOff(i), &inodes[i],
                      sizeof(InodeRecord));
    }
    std::vector<TreeGeometry> geos(config_.maxInodes);
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        if (!(inodes[i].flags & InodeRecord::kInUse))
            continue;
        // Structural sanity: the extent must lie inside the file
        // area. An in-use record violating that is rot, not a crash
        // state (creation publishes the record in one persist).
        if (inodes[i].extentOff < layout_.fileAreaOff ||
            inodes[i].extentOff + inodes[i].capacity >
                device_->size() ||
            inodes[i].capacity == 0) {
            if (!salvage)
                return Status::corruption("inode extent out of bounds");
            inodes[i].flags = 0;
            inodeOk[i] = false;
            ++recovery_.corruptRecordsQuarantined;
            continue;
        }
        geos[i] = TreeGeometry::forCapacity(inodes[i].capacity,
                                            config_.leafBlockSize,
                                            config_.degree);
        ++recovery_.filesFound;
    }

    // Degraded write-through is volatile pressure state, not crash
    // state: whatever landed in the base extent before the crash is
    // durable, and after replay the shadow structures are consistent
    // again — so recovery ends the weakened-atomicity window by
    // clearing the persistent flag (DESIGN.md §13).
    // The write-through policy flag clears the same way: the access
    // counters that justified it are volatile, so the policy restarts
    // cold after a crash and re-earns any write-through mask.
    bool cleared_flags = false;
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        if (!(inodes[i].flags & InodeRecord::kInUse) || !inodeOk[i])
            continue;
        u64 clear =
            inodes[i].flags &
            (InodeRecord::kDegraded | InodeRecord::kPolicyWriteThrough);
        if (inodes[i].flags & InodeRecord::kCondemned) {
            // Condemned is a terminal verdict: it survives every
            // mount until the file is deleted and recreated.
            ++recovery_.condemnedInodesFound;
        } else if (inodes[i].flags & InodeRecord::kFenced) {
            // A crash interrupted online repair. Replay above already
            // made the shadow structures consistent; what the fence
            // still guards against is media rot in the base extent.
            // Re-verify it here: if every byte reads back, the fence
            // clears and the file mounts Live; otherwise it stays
            // fenced and materializeInode re-queues online repair.
            ++recovery_.fencedInodesFound;
            const u64 vlen =
                std::min(inodes[i].fileSize, inodes[i].capacity);
            bool intact = true;
            constexpr u64 kChunk = 256 * 1024;
            for (u64 off = 0; off < vlen; off += kChunk) {
                const u64 nn = std::min(kChunk, vlen - off);
                if (device_->poisoned(inodes[i].extentOff + off, nn)) {
                    intact = false;
                    ++recovery_.poisonedRangesSkipped;
                    continue;
                }
                (void)crc32c(device_->rawRead(inodes[i].extentOff + off),
                             nn);
                device_->latency().chargeRead(nn);
            }
            if (intact)
                clear |= InodeRecord::kFenced;
        }
        if (clear == 0)
            continue;
        inodes[i].flags &= ~clear;
        const u64 flags_off =
            layout_.inodeOff(i) + offsetof(InodeRecord, flags);
        device_->store64(flags_off, inodes[i].flags);
        device_->flush(flags_off, 8);
        cleared_flags = true;
        if (clear & InodeRecord::kDegraded)
            ++recovery_.degradedFilesCleared;
        if (clear & InodeRecord::kPolicyWriteThrough)
            ++recovery_.policyFlagsCleared;
    }
    if (cleared_flags)
        device_->fence();

    pool_->resetAllocationState();
    Status scan_status = Status::ok();
    recovery_.poisonedRangesSkipped += nodeTable_->rebuild(
        [&](u32 idx, const NodeRecord &rec) {
            ++recovery_.recordsScanned;
            // The sealed identity CRC binds (in-use, level, inode) to
            // the index; silent rot in any of them fails here. A
            // quarantined record keeps its slot (rebuild never frees
            // in-use indices) so nothing can overwrite the evidence.
            if (!NodeRecord::identityOk(rec.info, rec.index)) {
                if (!salvage && scan_status.isOk())
                    scan_status = Status::corruption(
                        "node record identity checksum mismatch");
                ++recovery_.corruptRecordsQuarantined;
                return;
            }
            const u32 inode = NodeRecord::inode(rec.info);
            if (inode >= config_.maxInodes ||
                !(inodes[inode].flags & InodeRecord::kInUse)) {
                return;  // orphaned record (leaked by a crash); ignore
            }
            if (rec.logOff != 0) {
                const u64 cov =
                    geos[inode].coverage(NodeRecord::level(rec.info));
                Status s = pool_->markAllocated(rec.logOff, cov);
                if (!s.isOk()) {
                    // logOff points outside its pool class (or into
                    // an already-claimed cell): quarantine; reads of
                    // the covered range fall back to the base file.
                    if (!salvage && scan_status.isOk())
                        scan_status = s;
                    ++recovery_.corruptRecordsQuarantined;
                    recovery_.salvagedBytes += cov;
                    return;
                }
            }
            pendingRecords_[inode].emplace_back(idx, rec);
        },
        /*skip_poisoned=*/salvage);
    MGSP_RETURN_IF_ERROR(scan_status);

    // 3. Repair the extent bump pointer: a crash between the two
    //    superblock copies (or a salvaged older epoch) may leave it
    //    behind the furthest live extent; never re-allocate over one.
    u64 max_end = sb_.fileAreaBump;
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        if ((inodes[i].flags & InodeRecord::kInUse) && inodeOk[i])
            max_end = std::max(max_end,
                               inodes[i].extentOff + inodes[i].capacity);
    }
    if (max_end > sb_.fileAreaBump) {
        sb_.fileAreaBump = max_end;
        persistSuperblock();
    }

    recovery_.nanos = timer.elapsedNanos();

    // A salvage mount that quarantined anything serves some ranges
    // from base-file fallbacks that carry no version signal distinct
    // from the pre-fault state. Keep the read cache off for the whole
    // mount rather than risk a frame masking a salvaged range.
    if (recovery_.corruptRecordsQuarantined != 0 ||
        recovery_.salvagedBytes != 0 ||
        recovery_.poisonedRangesSkipped != 0 ||
        recovery_.superblockRecovered) {
        cache_.reset();
        cacheOn_ = false;
    }
    return Status::ok();
}

u32
MgspFs::findInode(const std::string &path) const
{
    if (path.size() > InodeRecord::kMaxNameLen)
        return kNoRecord;
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        InodeRecord rec;
        device_->read(layout_.inodeOff(i), &rec, sizeof(rec));
        if ((rec.flags & InodeRecord::kInUse) && path == rec.name)
            return i;
    }
    return kNoRecord;
}

StatusOr<MgspFs::OpenInode *>
MgspFs::materializeInode(u32 idx)
{
    InodeRecord rec;
    device_->read(layout_.inodeOff(idx), &rec, sizeof(rec));
    auto inode = std::make_unique<OpenInode>();
    inode->inodeIdx = idx;
    inode->extentOff = rec.extentOff;
    inode->capacity = rec.capacity;
    inode->fileSize.store(rec.fileSize, std::memory_order_relaxed);
    // Conservative: assume claims may reach the aligned EOF.
    inode->claimFrontier.store(
        alignUp(rec.fileSize, config_.fineGrainSize()),
        std::memory_order_relaxed);
    inode->path = rec.name;
    if (rec.flags & InodeRecord::kCondemned)
        inode->health.store(static_cast<u8>(FileHealthState::Condemned),
                            std::memory_order_relaxed);
    else if (rec.flags & InodeRecord::kFenced)
        inode->health.store(static_cast<u8>(FileHealthState::Fenced),
                            std::memory_order_relaxed);
    inode->tree = std::make_unique<ShadowTree>(
        device_.get(), pool_.get(), nodeTable_.get(), &config_, idx,
        rec.extentOff, rec.capacity, static_cast<u32>(rec.rootRecIdx));
    auto pending = pendingRecords_.find(idx);
    if (pending != pendingRecords_.end()) {
        for (const auto &[rec_idx, node_rec] : pending->second) {
            if (rec_idx != rec.rootRecIdx)
                inode->tree->attachRecord(rec_idx, node_rec);
        }
        pendingRecords_.erase(pending);
    }
    OpenInode *raw = inode.get();
    openInodes_[inode->path] = std::move(inode);
    // A fence that survived recovery's base-extent re-verification
    // still has unrecovered media errors behind it; hand the inode
    // straight to the online repair worker.
    if (healthOn_ && inodeHealth(raw) == FileHealthState::Fenced)
        enqueueRepair(raw);
    return raw;
}

StatusOr<std::unique_ptr<File>>
MgspFs::makeHandle(OpenInode *inode)
{
    inode->refCount.fetch_add(1, std::memory_order_acq_rel);
    return std::unique_ptr<File>(std::make_unique<MgspFile>(this, inode));
}

void
MgspFs::releaseHandle(OpenInode *inode)
{
    if (inode->refCount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last handle: write all logs back (paper's close path).
        // cleanMutex excludes an in-flight cleaner pass — writeBackAll
        // deletes volatile subtrees, which only covering exclusivity
        // makes safe. The queue is superseded by the full write-back.
        // Epoch mode must commit + retire first: writeBackAll recycles
        // records and cells that live epoch entries may still name.
        if (epochOn_) {
            Status es = epochBarrier();
            if (!es.isOk())
                MGSP_WARN("epoch barrier on close of %s failed: %s",
                          inode->path.c_str(), es.toString().c_str());
        }
        std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
        {
            std::lock_guard<std::mutex> dirty_guard(inode->dirtyMutex);
            inode->dirtyRanges.clear();
        }
        Status s = inode->tree->writeBackAll();
        if (!s.isOk())
            MGSP_WARN("writeback of %s failed: %s", inode->path.c_str(),
                      s.toString().c_str());
    }
}

StatusOr<std::unique_ptr<File>>
MgspFs::open(const std::string &path, const OpenOptions &options)
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    auto it = openInodes_.find(path);
    OpenInode *inode = nullptr;
    if (it != openInodes_.end()) {
        inode = it->second.get();
    } else {
        const u32 idx = findInode(path);
        if (idx == kNoRecord) {
            if (!options.create)
                return Status::notFound("no such file: " + path);
            // Fall through to creation below.
        } else {
            StatusOr<OpenInode *> mat = materializeInode(idx);
            if (!mat.isOk())
                return mat.status();
            inode = *mat;
        }
    }
    if (inode == nullptr) {
        StatusOr<std::unique_ptr<File>> created = createInodeLocked(
            path, options.capacity != 0 ? options.capacity
                                        : config_.defaultFileCapacity);
        return created;
    }
    if (options.create && options.exclusive)
        return Status::alreadyExists("file exists: " + path);
    StatusOr<std::unique_ptr<File>> handle = makeHandle(inode);
    if (handle.isOk() && options.truncate)
        MGSP_RETURN_IF_ERROR(doTruncate(inode, 0));
    return handle;
}

StatusOr<std::unique_ptr<File>>
MgspFs::createInodeLocked(const std::string &path, u64 capacity)
{
    MGSP_RETURN_IF_ERROR(writeGate(nullptr));
    if (path.empty() || path.size() > InodeRecord::kMaxNameLen)
        return Status::invalidArgument("bad file name");
    if (openInodes_.count(path) != 0 || findInode(path) != kNoRecord)
        return Status::alreadyExists("file exists: " + path);
    capacity = alignUp(std::max<u64>(capacity, config_.leafBlockSize),
                       config_.leafBlockSize);

    // Find a free inode slot.
    if (resourceInjector_ != nullptr &&
        resourceInjector_->onCall(ResourceSite::InodeAlloc)) {
        resourceCounters_.allocFail->add(1);
        return Status::outOfSpace("injected inode allocation fault");
    }
    u32 idx = kNoRecord;
    for (u32 i = 0; i < config_.maxInodes; ++i) {
        InodeRecord rec;
        device_->read(layout_.inodeOff(i), &rec, sizeof(rec));
        if (!(rec.flags & InodeRecord::kInUse)) {
            idx = i;
            break;
        }
    }
    if (idx == kNoRecord) {
        resourceCounters_.allocFail->add(1);
        return Status::outOfSpace("inode table full");
    }

    if (resourceInjector_ != nullptr &&
        resourceInjector_->onCall(ResourceSite::FileAreaAlloc)) {
        resourceCounters_.allocFail->add(1);
        return Status::outOfSpace("injected file-area allocation fault");
    }

    // Allocate the extent: reuse a freed one or bump the area.
    u64 extent_off = 0;
    for (auto it = freeExtents_.begin(); it != freeExtents_.end(); ++it) {
        if (it->second >= capacity) {
            extent_off = it->first;
            freeExtents_.erase(it);
            device_->fill(extent_off, 0, capacity);  // fresh file reads 0
            break;
        }
    }
    if (extent_off == 0) {
        const u64 bump = sb_.fileAreaBump;
        if (bump + capacity > device_->size()) {
            resourceCounters_.allocFail->add(1);
            return Status::outOfSpace("file area exhausted");
        }
        extent_off = bump;
        // Full dual-copy rewrite, not a bare field store: the
        // superblock checksum covers the bump pointer. If the crash
        // beats the inode publish, recovery's max-extent repair is a
        // no-op and the gap is merely leaked until the next create.
        sb_.fileAreaBump = bump + capacity;
        persistSuperblock();
    }

    // Root node record (always valid: the extent is the root's log).
    StatusOr<u32> root_rec = nodeTable_->allocRecord(
        /*level=*/0, idx, /*index=*/0, /*log_off=*/0, kBitValid);
    if (!root_rec.isOk())
        return root_rec.status();

    // Publish the inode last: its in-use flag is the creation commit.
    InodeRecord rec{};
    rec.extentOff = extent_off;
    rec.capacity = capacity;
    rec.fileSize = 0;
    rec.rootRecIdx = *root_rec;
    std::memset(rec.name, 0, sizeof(rec.name));
    std::memcpy(rec.name, path.data(), path.size());
    rec.flags = InodeRecord::kInUse;
    device_->write(layout_.inodeOff(idx), &rec, sizeof(rec));
    device_->persist(layout_.inodeOff(idx), sizeof(rec));

    StatusOr<OpenInode *> mat = materializeInode(idx);
    if (!mat.isOk())
        return mat.status();
    return makeHandle(*mat);
}

Status
MgspFs::remove(const std::string &path)
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    auto it = openInodes_.find(path);
    if (it != openInodes_.end()) {
        if (it->second->refCount.load(std::memory_order_acquire) != 0)
            return Status::busy("file still open: " + path);
        if (it->second->cleanerPins.load(std::memory_order_acquire) != 0)
            return Status::busy("file being cleaned: " + path);
        freeExtents_.emplace_back(it->second->extentOff,
                                  it->second->capacity);
        const u32 idx = it->second->inodeIdx;
        // Drop cached frames before the tree is destroyed: frames
        // hold TreeNode pointers into it. Safe here — refCount is 0,
        // so no reader can be mid-lookup on this inode.
        if (cache_ != nullptr)
            cache_->dropFile(idx);
        InodeRecord rec;
        device_->read(layout_.inodeOff(idx), &rec, sizeof(rec));
        nodeTable_->freeRecord(static_cast<u32>(rec.rootRecIdx));
        device_->store64(layout_.inodeOff(idx), 0);  // clear flags
        device_->persist(layout_.inodeOff(idx), 8);
        openInodes_.erase(it);
        return Status::ok();
    }
    const u32 idx = findInode(path);
    if (idx == kNoRecord)
        return Status::notFound("no such file: " + path);
    InodeRecord rec;
    device_->read(layout_.inodeOff(idx), &rec, sizeof(rec));
    freeExtents_.emplace_back(rec.extentOff, rec.capacity);
    nodeTable_->freeRecord(static_cast<u32>(rec.rootRecIdx));
    device_->store64(layout_.inodeOff(idx), 0);
    device_->persist(layout_.inodeOff(idx), 8);
    pendingRecords_.erase(idx);
    return Status::ok();
}

bool
MgspFs::exists(const std::string &path) const
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    if (openInodes_.count(path) != 0)
        return true;
    return findInode(path) != kNoRecord;
}

Status
MgspFs::writeBackAllFiles()
{
    // Epoch entries must retire before any write-back recycles the
    // records/cells they name (taken before tableMutex_: the commit
    // never touches the open table).
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochBarrier());
    std::lock_guard<std::mutex> guard(tableMutex_);
    for (auto &[path, inode] : openInodes_) {
        if (inode->refCount.load(std::memory_order_acquire) == 0)
            continue;
        std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
        {
            std::lock_guard<std::mutex> dirty_guard(inode->dirtyMutex);
            inode->dirtyRanges.clear();
        }
        MGSP_RETURN_IF_ERROR(inode->tree->writeBackAll());
    }
    return Status::ok();
}

// ---- background write-back & cleaning ---------------------------

bool
MgspFs::poolBelowWatermark() const
{
    const u64 total = pool_->cellBytes();
    if (total == 0)
        return false;
    return static_cast<double>(pool_->freeBytes()) <
           config_.cleanerLowWatermark * static_cast<double>(total);
}

void
MgspFs::noteDirty(OpenInode *inode, u64 off, u64 len, u64 srcOp)
{
    if (!cleanerOn_ || len == 0)
        return;
    {
        std::lock_guard<std::mutex> guard(inode->dirtyMutex);
        if (!inode->dirtyRanges.empty()) {
            auto &last = inode->dirtyRanges.back();
            if (off <= last.off + last.len && last.off <= off + len) {
                const u64 end = std::max(last.off + last.len, off + len);
                last.off = std::min(last.off, off);
                last.len = end - last.off;
                // Latest contributor wins: close enough for the flow
                // arrow, and sequential streams coalesce to one range.
                if (srcOp != 0)
                    last.srcOp = srcOp;
            } else {
                inode->dirtyRanges.push_back({off, len, srcOp});
            }
        } else {
            inode->dirtyRanges.push_back({off, len, srcOp});
        }
    }
    if (!poolBelowWatermark())
        return;
    cleanCounters_.watermarkTriggers->add(1);
    if (cleanerWorkers_.empty()) {
        // Inline mode: the writer itself runs the pass.
        Status s = drainInode(inode);
        if (!s.isOk())
            MGSP_WARN("inline clean of %s failed: %s",
                      inode->path.c_str(), s.toString().c_str());
    } else {
        {
            std::lock_guard<std::mutex> guard(cleanerMutex_);
            cleanerKick_ = true;
        }
        cleanerCv_.notify_one();
    }
}

Status
MgspFs::cleanOneRange(OpenInode *inode, u64 off, u64 len,
                      ReclaimStats *reclaim)
{
    if (off >= inode->capacity)
        return Status::ok();
    len = std::min(len, inode->capacity - off);
    if (len == 0)
        return Status::ok();
    if (config_.lockMode == LockMode::FileLock) {
        ExclusiveGuard guard(inode->fileLock);
        return inode->tree->cleanRange(off, len, reclaim);
    }
    // Full MGL discipline, as in the append fast path: IW down the
    // path, W on the covering node. Writers and readers anywhere in
    // the range are excluded (including coarse writes at ancestors,
    // which would need W against our IW) while disjoint subtrees
    // proceed concurrently.
    TreeNode *covering = inode->tree->coveringNode(off, len);
    std::vector<TreeNode *> ancestors;
    for (TreeNode *n = covering->parent; n != nullptr; n = n->parent)
        ancestors.push_back(n);
    for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it)
        (*it)->lock.acquire(MglMode::IW);
    covering->lock.acquire(MglMode::W);
    covering->version.writeBegin();
    Status s = inode->tree->cleanRange(off, len, reclaim);
    covering->version.writeEnd();
    covering->lock.release(MglMode::W);
    for (TreeNode *n : ancestors)
        n->lock.release(MglMode::IW);
    return s;
}

Status
MgspFs::drainInode(OpenInode *inode)
{
    // One cycle = one queue swap, not loop-until-empty: a constant
    // writer stream must not be able to wedge a sync() barrier.
    // Epoch mode commits + retires first (before cleanMutex — commit
    // never takes it): cleanRange recycles records and pool cells
    // that a live epoch entry may still name, and a stale entry
    // replaying over a recycled record would resurrect freed state.
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochBarrier());
    Stopwatch cycle_timer;
    std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
    std::vector<OpenInode::DirtyRange> ranges;
    {
        std::lock_guard<std::mutex> guard(inode->dirtyMutex);
        ranges.swap(inode->dirtyRanges);
    }
    if (ranges.empty()) {
        exitDegradedLocked(inode);
        return Status::ok();
    }
    stats::OpTrace trace(stats::OpType::Clean, ranges.front().off,
                         ranges.front().len, statsOn_);
    trace.stage(stats::Stage::Clean);
    ReclaimStats reclaim;
    Status result = Status::ok();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
        const bool traced = trace.on() && trace::enabled();
        const u64 range_start = traced ? monotonicNanos() : 0;
        Status s = cleanOneRange(inode, ranges[i].off, ranges[i].len,
                                 &reclaim);
        if (traced) {
            // Per-range span carrying the causal link back to the
            // write that dirtied it; the export synthesises the flow
            // arrow from srcOp.
            trace::TraceSpan span;
            span.opId = trace.opId();
            span.srcOpId = ranges[i].srcOp;
            span.startNanos = range_start;
            span.endNanos = monotonicNanos();
            span.bytes = ranges[i].len;
            span.threadId = stats::currentThreadId();
            span.stage = stats::Stage::Clean;
            span.op = stats::OpType::Clean;
            span.flags = trace::kSpanCleanRange;
            span.ok = s.isOk();
            trace::pushSpan(span);
        }
        if (!s.isOk()) {
            // Re-queue what this cycle did not finish.
            std::lock_guard<std::mutex> guard(inode->dirtyMutex);
            inode->dirtyRanges.insert(inode->dirtyRanges.begin(),
                                      ranges.begin() + i, ranges.end());
            result = s;
            break;
        }
        cleanCounters_.ranges->add(1);
    }
    cleanCounters_.cycles->add(1);
    cleanCounters_.bytesWrittenBack->add(reclaim.bytesWrittenBack);
    cleanCounters_.blocksReclaimed->add(reclaim.blocksReclaimed);
    cleanCounters_.bytesReclaimed->add(reclaim.bytesReclaimed);
    cleanCounters_.recordsReclaimed->add(reclaim.recordsReclaimed);
    if (result.isOk())
        exitDegradedLocked(inode);
    else
        trace.setFailed();
    if (cycle_timer.elapsedNanos() > config_.resourceRetryDeadlineNanos)
        watchdogTrip("cleaner drain cycle", cycle_timer.elapsedNanos());
    return result;
}

Status
MgspFs::drainOpenFiles()
{
    std::vector<OpenInode *> targets;
    {
        std::lock_guard<std::mutex> guard(tableMutex_);
        for (auto &[path, inode] : openInodes_) {
            bool has_dirty;
            {
                std::lock_guard<std::mutex> dg(inode->dirtyMutex);
                has_dirty = !inode->dirtyRanges.empty();
            }
            if (!has_dirty)
                continue;
            inode->cleanerPins.fetch_add(1, std::memory_order_acq_rel);
            targets.push_back(inode.get());
        }
    }
    Status result = Status::ok();
    for (OpenInode *inode : targets) {
        Status s = drainInode(inode);
        if (!s.isOk() && result.isOk())
            result = s;
        inode->cleanerPins.fetch_sub(1, std::memory_order_acq_rel);
    }
    return result;
}

Status
MgspFs::syncFile(OpenInode *inode)
{
    // Epoch mode: sync() IS the group commit — bump the epoch and
    // publish every participant's staged metadata (all inodes, not
    // just this one: the epoch is global). With the cleaner on the
    // drain below additionally retires the epoch entries.
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochCommit());
    if (!cleanerOn_)
        return Status::ok();
    cleanCounters_.syncBarriers->add(1);
    return drainInode(inode);
}

ScrubStats
MgspFs::scrubAllFiles()
{
    // Pin targets outside tableMutex_, like drainOpenFiles: the scrub
    // holds each tree's root R lock for a while and must not keep the
    // whole open table locked meanwhile.
    std::vector<OpenInode *> targets;
    {
        std::lock_guard<std::mutex> guard(tableMutex_);
        for (auto &[path, inode] : openInodes_) {
            inode->cleanerPins.fetch_add(1, std::memory_order_acq_rel);
            targets.push_back(inode.get());
        }
    }
    ScrubStats total;
    for (OpenInode *inode : targets) {
        const ScrubStats s = inode->tree->scrub();
        total.unitsVerified += s.unitsVerified;
        total.crcMismatches += s.crcMismatches;
        total.poisonSkipped += s.poisonSkipped;
        if (s.crcMismatches != 0) {
            MGSP_WARN("scrub: %llu checksum mismatch(es) in %s",
                      static_cast<unsigned long long>(s.crcMismatches),
                      inode->path.c_str());
            // Publish the verdict: each mismatching unit counts
            // against the inode's fault budget (safe here — the scrub
            // loop holds only cleanerPins, no engine locks).
            noteInodeFault(inode, static_cast<u32>(s.crcMismatches),
                           "scrub checksum verdict");
        }
        inode->cleanerPins.fetch_sub(1, std::memory_order_acq_rel);
    }
    faultCounters_.scrubPasses->add(1);
    faultCounters_.scrubUnitsVerified->add(total.unitsVerified);
    faultCounters_.scrubCrcMismatches->add(total.crcMismatches);
    faultCounters_.scrubPoisonSkipped->add(total.poisonSkipped);
    return total;
}

void
MgspFs::cleanerMain()
{
    using Clock = std::chrono::steady_clock;
    // The scrub interval doubles as a wait timeout so a scrub-only
    // configuration (sync interval 0) still wakes periodically.
    u64 timeout_ms = config_.cleanerSyncIntervalMillis;
    if (config_.scrubIntervalMillis > 0)
        timeout_ms = timeout_ms > 0
                         ? std::min(timeout_ms,
                                    config_.scrubIntervalMillis)
                         : config_.scrubIntervalMillis;
    Clock::time_point last_scrub = Clock::now();

    std::unique_lock<std::mutex> lk(cleanerMutex_);
    for (;;) {
        if (timeout_ms > 0) {
            // Timeout = periodic drain (the Fig. 7 sync interval)
            // and/or periodic scrub.
            cleanerCv_.wait_for(
                lk, std::chrono::milliseconds(timeout_ms),
                [this] { return cleanerStop_ || cleanerKick_; });
        } else {
            cleanerCv_.wait(
                lk, [this] { return cleanerStop_ || cleanerKick_; });
        }
        if (cleanerStop_)
            return;
        cleanerKick_ = false;
        lk.unlock();
        Status s = drainOpenFiles();
        if (!s.isOk())
            MGSP_WARN("cleaner drain failed: %s", s.toString().c_str());
        processRepairQueue();
        if (config_.scrubIntervalMillis > 0 &&
            Clock::now() - last_scrub >=
                std::chrono::milliseconds(config_.scrubIntervalMillis)) {
            scrubAllFiles();
            last_scrub = Clock::now();
            // A scrub verdict may have fenced something just now;
            // repair it in the same wakeup instead of the next one.
            processRepairQueue();
        }
        lk.lock();
    }
}

void
MgspFs::startCleaner()
{
    if (!cleanerOn_ || config_.cleanerThreads == 0)
        return;
    for (u32 i = 0; i < config_.cleanerThreads; ++i)
        cleanerWorkers_.emplace_back([this] { cleanerMain(); });
}

void
MgspFs::stopCleaner()
{
    if (!cleanerWorkers_.empty()) {
        {
            std::lock_guard<std::mutex> guard(cleanerMutex_);
            cleanerStop_ = true;
        }
        cleanerCv_.notify_all();
        for (std::thread &t : cleanerWorkers_)
            t.join();
        cleanerWorkers_.clear();
    }
    // Drop whatever repair work never ran (processRepairQueue bails
    // on cleanerStop_). The queued inodes hold cleaner pins; release
    // them so unmount's write-back is not blocked forever. Runs even
    // without worker threads: repairNow() can also enqueue.
    std::lock_guard<std::mutex> guard(cleanerMutex_);
    for (OpenInode *inode : repairQueue_)
        inode->cleanerPins.fetch_sub(1, std::memory_order_acq_rel);
    repairQueue_.clear();
}

StatusOr<TreeStats>
MgspFs::statsFor(const std::string &path) const
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    auto it = openInodes_.find(path);
    if (it == openInodes_.end())
        return Status::notFound("not open: " + path);
    return it->second->tree->snapshotStats();
}

/** Lowercase engine-state name for statsReport text/JSON. */
static const char *
healthStateName(HealthState s)
{
    switch (s) {
    case HealthState::Healthy:
        return "healthy";
    case HealthState::Degraded:
        return "degraded";
    case HealthState::ReadOnly:
        return "read-only";
    case HealthState::FailStop:
        return "fail-stop";
    }
    return "unknown";
}

MgspStatsReport
MgspFs::statsReport() const
{
    // Aggregate the volatile per-file tree counters.
    u64 coarse = 0, leafw = 0, fine = 0, mt_hits = 0, mt_misses = 0;
    {
        std::lock_guard<std::mutex> guard(tableMutex_);
        for (const auto &[path, inode] : openInodes_) {
            const TreeStats t = inode->tree->snapshotStats();
            coarse += t.coarseLogWrites;
            leafw += t.leafLogWrites;
            fine += t.fineSubWrites;
            mt_hits += t.minTreeHits;
            mt_misses += t.minTreeMisses;
        }
    }
    const PmemStats &dev = device_->stats();
    const u64 dev_written = dev.bytesWritten.load(std::memory_order_relaxed);
    const u64 dev_flushed = dev.bytesFlushed.load(std::memory_order_relaxed);
    const u64 dev_lines = dev.flushedLines.load(std::memory_order_relaxed);
    const u64 dev_fences = dev.fences.load(std::memory_order_relaxed);
    const u64 logical = logicalBytes_.load(std::memory_order_relaxed);
    const double total_amp =
        logical ? static_cast<double>(dev_written) / logical : 0.0;

    static constexpr stats::Stage kStages[] = {
        stats::Stage::Claim,       stats::Stage::Lock,
        stats::Stage::DataWrite,   stats::Stage::CommitFence,
        stats::Stage::BitmapApply, stats::Stage::Read,
        stats::Stage::OptimisticRead, stats::Stage::Recovery,
        stats::Stage::WriteBack,   stats::Stage::Clean,
    };
    static constexpr stats::OpType kOps[] = {
        stats::OpType::Write,    stats::OpType::Append,
        stats::OpType::Batch,    stats::OpType::Read,
        stats::OpType::Truncate, stats::OpType::Recovery,
        stats::OpType::Clean,
    };

    auto &reg = stats::StatsRegistry::instance();
    const u64 clean_ranges = reg.counter("clean.ranges").value();
    const u64 clean_cycles = reg.counter("clean.cycles").value();
    const u64 clean_syncs = reg.counter("clean.sync_barriers").value();
    const u64 clean_wm = reg.counter("clean.watermark_triggers").value();
    const u64 clean_oom = reg.counter("clean.oom_retries").value();
    const u64 clean_wb = reg.counter("clean.bytes_written_back").value();
    const u64 clean_blocks = reg.counter("clean.blocks_reclaimed").value();
    const u64 clean_bytes = reg.counter("clean.bytes_reclaimed").value();
    const u64 clean_recs = reg.counter("clean.records_reclaimed").value();
    const u64 read_opt = reg.counter("read.optimistic").value();
    const u64 read_retry = reg.counter("read.retry").value();
    const u64 read_fb = reg.counter("read.fallback").value();
    const u64 read_media = reg.counter("read.media_retries").value();
    const u64 wb_crc_skips =
        reg.counter("write_back.crc_mismatch_skips").value();
    const u64 wb_poison_skips =
        reg.counter("write_back.poison_skips").value();
    const u64 wb_salvaged =
        reg.counter("write_back.salvaged_bytes").value();
    const u64 scrub_passes = reg.counter("scrub.passes").value();
    const u64 scrub_units = reg.counter("scrub.units_verified").value();
    const u64 scrub_bad = reg.counter("scrub.crc_mismatches").value();
    const u64 scrub_poison = reg.counter("scrub.poison_skipped").value();
    const u64 alloc_fail = reg.counter("alloc.fail").value();
    const u64 alloc_retry = reg.counter("alloc.retry").value();
    const u64 alloc_backoff = reg.counter("alloc.backoff_ns").value();
    const u64 deg_enter = reg.counter("degraded.enter").value();
    const u64 deg_exit = reg.counter("degraded.exit").value();
    const u64 deg_bytes = reg.counter("degraded.bytes").value();
    const u64 wd_trips = reg.counter("watchdog.trips").value();
    const u64 ep_commits = reg.counter("epoch.commits").value();
    const u64 ep_fast = reg.counter("epoch.fast_commits").value();
    const u64 ep_inodes = reg.counter("epoch.inodes_committed").value();
    const u64 ep_slots = reg.counter("epoch.slots_flushed").value();
    const u64 ep_auto = reg.counter("epoch.auto_flushes").value();
    const u64 ep_final = reg.counter("epoch.finalizes").value();
    const u64 pol_evals = reg.counter("policy.evaluations").value();
    const u64 pol_to_wt = reg.counter("policy.to_write_through").value();
    const u64 pol_to_sh = reg.counter("policy.to_shadow").value();
    const u64 pol_wb = reg.counter("policy.write_back_bytes").value();
    const u64 txn_prep = reg.counter("txn.prepares").value();
    const u64 txn_commit = reg.counter("txn.commits").value();
    const u64 txn_abort = reg.counter("txn.aborts").value();
    const u64 txn_recov = reg.counter("txn.recovered").value();
    const u64 txn_disc = reg.counter("txn.discarded").value();
    const u64 h_faults = reg.counter("health.faults_recorded").value();
    const u64 h_fences = reg.counter("health.inode_fences").value();
    const u64 h_unfences = reg.counter("health.inode_unfences").value();
    const u64 h_rep_ok = reg.counter("health.repairs_ok").value();
    const u64 h_rep_bad = reg.counter("health.repairs_failed").value();
    const u64 h_cond = reg.counter("health.condemned").value();
    const u64 h_vreads = reg.counter("health.verified_reads").value();
    const u64 h_rreads = reg.counter("health.rejected_reads").value();
    const char *h_engine = healthStateName(healthReg_.engineState());
    const FaultStats fault = device_->faultStats();

    MgspStatsReport report;
    char buf[512];

    // ---- human-readable text ------------------------------------
    std::string &text = report.text;
    text += "meta: " + stats::metadataJson() + "\n";
    std::snprintf(buf, sizeof(buf),
                  "MGSP stats report (tracing %s)\n"
                  "logical bytes written: %llu\n"
                  "device: written=%llu flushed=%llu lines=%llu "
                  "fences=%llu  total write-amp=%.2f\n",
                  statsOn_ ? "on" : "off",
                  static_cast<unsigned long long>(logical),
                  static_cast<unsigned long long>(dev_written),
                  static_cast<unsigned long long>(dev_flushed),
                  static_cast<unsigned long long>(dev_lines),
                  static_cast<unsigned long long>(dev_fences), total_amp);
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "%-13s %10s %12s %9s %9s %12s %12s %8s %6s\n", "stage",
                  "ops", "nanos", "p50ns", "p99ns", "bytes_w", "bytes_f",
                  "fences", "w-amp");
    text += buf;
    for (stats::Stage s : kStages) {
        const stats::StageSummary sum = stats::stageSummary(s);
        if (sum.ops == 0 && sum.bytesWritten == 0)
            continue;
        std::snprintf(
            buf, sizeof(buf),
            "%-13s %10llu %12llu %9llu %9llu %12llu %12llu %8llu %6.2f\n",
            stats::stageName(s), static_cast<unsigned long long>(sum.ops),
            static_cast<unsigned long long>(sum.nanosTotal),
            static_cast<unsigned long long>(sum.latency.percentile(0.50)),
            static_cast<unsigned long long>(sum.latency.percentile(0.99)),
            static_cast<unsigned long long>(sum.bytesWritten),
            static_cast<unsigned long long>(sum.bytesFlushed),
            static_cast<unsigned long long>(sum.fences),
            logical ? static_cast<double>(sum.bytesWritten) / logical
                    : 0.0);
        text += buf;
    }
    text += "op latencies:\n";
    for (stats::OpType op : kOps) {
        const Histogram h =
            stats::StatsRegistry::instance()
                .histogram(std::string("op.") + stats::opTypeName(op) +
                           ".latency_ns")
                .snapshot();
        if (h.count() == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "  %-9s %s\n",
                      stats::opTypeName(op), h.summary().c_str());
        text += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "clean: cycles=%llu ranges=%llu sync-barriers=%llu "
                  "wm-triggers=%llu oom-retries=%llu "
                  "bytes-written-back=%llu blocks-reclaimed=%llu "
                  "bytes-reclaimed=%llu records-reclaimed=%llu\n",
                  static_cast<unsigned long long>(clean_cycles),
                  static_cast<unsigned long long>(clean_ranges),
                  static_cast<unsigned long long>(clean_syncs),
                  static_cast<unsigned long long>(clean_wm),
                  static_cast<unsigned long long>(clean_oom),
                  static_cast<unsigned long long>(clean_wb),
                  static_cast<unsigned long long>(clean_blocks),
                  static_cast<unsigned long long>(clean_bytes),
                  static_cast<unsigned long long>(clean_recs));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "read: optimistic=%llu retries=%llu fallbacks=%llu "
                  "media-retries=%llu\n",
                  static_cast<unsigned long long>(read_opt),
                  static_cast<unsigned long long>(read_retry),
                  static_cast<unsigned long long>(read_fb),
                  static_cast<unsigned long long>(read_media));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "fault: bit-flips=%llu torn-stores=%llu "
                  "ranges-poisoned=%llu poison-read-hits=%llu "
                  "ranges-healed=%llu\n"
                  "scrub: passes=%llu units-verified=%llu "
                  "crc-mismatches=%llu poison-skipped=%llu\n"
                  "salvage: wb-crc-skips=%llu wb-poison-skips=%llu "
                  "wb-salvaged-bytes=%llu\n",
                  static_cast<unsigned long long>(fault.bitFlipsInjected),
                  static_cast<unsigned long long>(fault.tornStores),
                  static_cast<unsigned long long>(fault.rangesPoisoned),
                  static_cast<unsigned long long>(fault.poisonReadHits),
                  static_cast<unsigned long long>(fault.rangesHealed),
                  static_cast<unsigned long long>(scrub_passes),
                  static_cast<unsigned long long>(scrub_units),
                  static_cast<unsigned long long>(scrub_bad),
                  static_cast<unsigned long long>(scrub_poison),
                  static_cast<unsigned long long>(wb_crc_skips),
                  static_cast<unsigned long long>(wb_poison_skips),
                  static_cast<unsigned long long>(wb_salvaged));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "resource: alloc-fails=%llu alloc-retries=%llu "
                  "backoff-ns=%llu degraded-enters=%llu "
                  "degraded-exits=%llu degraded-bytes=%llu "
                  "watchdog-trips=%llu\n",
                  static_cast<unsigned long long>(alloc_fail),
                  static_cast<unsigned long long>(alloc_retry),
                  static_cast<unsigned long long>(alloc_backoff),
                  static_cast<unsigned long long>(deg_enter),
                  static_cast<unsigned long long>(deg_exit),
                  static_cast<unsigned long long>(deg_bytes),
                  static_cast<unsigned long long>(wd_trips));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "epoch: commits=%llu fast=%llu inodes=%llu slots=%llu "
                  "auto-flushes=%llu finalizes=%llu\n"
                  "policy: evals=%llu to-wt=%llu to-shadow=%llu "
                  "wb-bytes=%llu\n",
                  static_cast<unsigned long long>(ep_commits),
                  static_cast<unsigned long long>(ep_fast),
                  static_cast<unsigned long long>(ep_inodes),
                  static_cast<unsigned long long>(ep_slots),
                  static_cast<unsigned long long>(ep_auto),
                  static_cast<unsigned long long>(ep_final),
                  static_cast<unsigned long long>(pol_evals),
                  static_cast<unsigned long long>(pol_to_wt),
                  static_cast<unsigned long long>(pol_to_sh),
                  static_cast<unsigned long long>(pol_wb));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "txn: prepares=%llu commits=%llu aborts=%llu "
                  "recovered=%llu discarded=%llu\n",
                  static_cast<unsigned long long>(txn_prep),
                  static_cast<unsigned long long>(txn_commit),
                  static_cast<unsigned long long>(txn_abort),
                  static_cast<unsigned long long>(txn_recov),
                  static_cast<unsigned long long>(txn_disc));
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "health: engine=%s faults=%llu fences=%llu "
                  "unfences=%llu repairs-ok=%llu repairs-failed=%llu "
                  "condemned=%llu verified-reads=%llu "
                  "rejected-reads=%llu recovery-fenced=%u "
                  "recovery-condemned=%u\n",
                  h_engine, static_cast<unsigned long long>(h_faults),
                  static_cast<unsigned long long>(h_fences),
                  static_cast<unsigned long long>(h_unfences),
                  static_cast<unsigned long long>(h_rep_ok),
                  static_cast<unsigned long long>(h_rep_bad),
                  static_cast<unsigned long long>(h_cond),
                  static_cast<unsigned long long>(h_vreads),
                  static_cast<unsigned long long>(h_rreads),
                  recovery_.fencedInodesFound,
                  recovery_.condemnedInodesFound);
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "tree: coarse=%llu leaf=%llu fine=%llu mst-hit=%llu "
                  "mst-miss=%llu\n"
                  "recovery: replayed=%u scanned=%u files=%u nanos=%llu "
                  "quarantined=%u salvaged-bytes=%llu poison-skipped=%u "
                  "sb-recovered=%s degraded-cleared=%u "
                  "epochs-replayed=%u epochs-discarded=%u "
                  "policy-cleared=%u txns-recovered=%u "
                  "txns-discarded=%u txns-quarantined=%u\n",
                  static_cast<unsigned long long>(coarse),
                  static_cast<unsigned long long>(leafw),
                  static_cast<unsigned long long>(fine),
                  static_cast<unsigned long long>(mt_hits),
                  static_cast<unsigned long long>(mt_misses),
                  recovery_.liveEntriesReplayed, recovery_.recordsScanned,
                  recovery_.filesFound,
                  static_cast<unsigned long long>(recovery_.nanos),
                  recovery_.corruptRecordsQuarantined,
                  static_cast<unsigned long long>(recovery_.salvagedBytes),
                  recovery_.poisonedRangesSkipped,
                  recovery_.superblockRecovered ? "yes" : "no",
                  recovery_.degradedFilesCleared, recovery_.epochsReplayed,
                  recovery_.epochsDiscarded, recovery_.policyFlagsCleared,
                  recovery_.txnsRecovered, recovery_.txnsDiscarded,
                  recovery_.txnsQuarantined);
    text += buf;

    // ---- JSON ---------------------------------------------------
    auto hist_json = [&buf](const Histogram &h) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"count\":%llu,\"mean\":%.1f,\"min\":%llu,\"p50\":%llu,"
            "\"p90\":%llu,\"p99\":%llu,\"max\":%llu}",
            static_cast<unsigned long long>(h.count()), h.mean(),
            static_cast<unsigned long long>(h.min()),
            static_cast<unsigned long long>(h.percentile(0.50)),
            static_cast<unsigned long long>(h.percentile(0.90)),
            static_cast<unsigned long long>(h.percentile(0.99)),
            static_cast<unsigned long long>(h.max()));
        return std::string(buf);
    };
    std::string &json = report.json;
    json += "{\"meta\":" + stats::metadataJson() + ",";
    std::snprintf(buf, sizeof(buf),
                  "\"stats_enabled\":%s,\"logical_bytes\":%llu,"
                  "\"device\":{\"bytes_written\":%llu,\"bytes_flushed\":"
                  "%llu,\"flushed_lines\":%llu,\"fences\":%llu},"
                  "\"write_amplification\":%.3f,\"stages\":{",
                  statsOn_ ? "true" : "false",
                  static_cast<unsigned long long>(logical),
                  static_cast<unsigned long long>(dev_written),
                  static_cast<unsigned long long>(dev_flushed),
                  static_cast<unsigned long long>(dev_lines),
                  static_cast<unsigned long long>(dev_fences), total_amp);
    json += buf;
    bool first = true;
    for (stats::Stage s : kStages) {
        const stats::StageSummary sum = stats::stageSummary(s);
        if (!first)
            json += ",";
        first = false;
        std::snprintf(
            buf, sizeof(buf),
            "\"%s\":{\"ops\":%llu,\"nanos_total\":%llu,"
            "\"bytes_written\":%llu,\"bytes_flushed\":%llu,"
            "\"flushed_lines\":%llu,\"fences\":%llu,"
            "\"write_amplification\":%.3f,\"latency_ns\":",
            stats::stageName(s), static_cast<unsigned long long>(sum.ops),
            static_cast<unsigned long long>(sum.nanosTotal),
            static_cast<unsigned long long>(sum.bytesWritten),
            static_cast<unsigned long long>(sum.bytesFlushed),
            static_cast<unsigned long long>(sum.flushedLines),
            static_cast<unsigned long long>(sum.fences),
            logical ? static_cast<double>(sum.bytesWritten) / logical
                    : 0.0);
        json += buf;
        json += hist_json(sum.latency);
        json += "}";
    }
    json += "},\"ops\":{";
    first = true;
    for (stats::OpType op : kOps) {
        const Histogram h =
            stats::StatsRegistry::instance()
                .histogram(std::string("op.") + stats::opTypeName(op) +
                           ".latency_ns")
                .snapshot();
        if (!first)
            json += ",";
        first = false;
        json += std::string("\"") + stats::opTypeName(op) +
                "\":" + hist_json(h);
    }
    std::snprintf(buf, sizeof(buf),
                  "},\"clean\":{\"cycles\":%llu,\"ranges\":%llu,"
                  "\"sync_barriers\":%llu,\"watermark_triggers\":%llu,"
                  "\"oom_retries\":%llu,\"bytes_written_back\":%llu,"
                  "\"blocks_reclaimed\":%llu,\"bytes_reclaimed\":%llu,"
                  "\"records_reclaimed\":%llu",
                  static_cast<unsigned long long>(clean_cycles),
                  static_cast<unsigned long long>(clean_ranges),
                  static_cast<unsigned long long>(clean_syncs),
                  static_cast<unsigned long long>(clean_wm),
                  static_cast<unsigned long long>(clean_oom),
                  static_cast<unsigned long long>(clean_wb),
                  static_cast<unsigned long long>(clean_blocks),
                  static_cast<unsigned long long>(clean_bytes),
                  static_cast<unsigned long long>(clean_recs));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"read\":{\"optimistic\":%llu,\"retries\":%llu,"
                  "\"fallbacks\":%llu,\"media_retries\":%llu",
                  static_cast<unsigned long long>(read_opt),
                  static_cast<unsigned long long>(read_retry),
                  static_cast<unsigned long long>(read_fb),
                  static_cast<unsigned long long>(read_media));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"fault\":{\"bit_flips\":%llu,\"torn_stores\":%llu,"
                  "\"ranges_poisoned\":%llu,\"poison_read_hits\":%llu,"
                  "\"ranges_healed\":%llu},"
                  "\"scrub\":{\"passes\":%llu,\"units_verified\":%llu,"
                  "\"crc_mismatches\":%llu,\"poison_skipped\":%llu},"
                  "\"salvage\":{\"wb_crc_skips\":%llu,"
                  "\"wb_poison_skips\":%llu,\"wb_salvaged_bytes\":%llu",
                  static_cast<unsigned long long>(fault.bitFlipsInjected),
                  static_cast<unsigned long long>(fault.tornStores),
                  static_cast<unsigned long long>(fault.rangesPoisoned),
                  static_cast<unsigned long long>(fault.poisonReadHits),
                  static_cast<unsigned long long>(fault.rangesHealed),
                  static_cast<unsigned long long>(scrub_passes),
                  static_cast<unsigned long long>(scrub_units),
                  static_cast<unsigned long long>(scrub_bad),
                  static_cast<unsigned long long>(scrub_poison),
                  static_cast<unsigned long long>(wb_crc_skips),
                  static_cast<unsigned long long>(wb_poison_skips),
                  static_cast<unsigned long long>(wb_salvaged));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"resource\":{\"alloc_fails\":%llu,"
                  "\"alloc_retries\":%llu,\"backoff_ns\":%llu,"
                  "\"degraded_enters\":%llu,\"degraded_exits\":%llu,"
                  "\"degraded_bytes\":%llu,\"watchdog_trips\":%llu",
                  static_cast<unsigned long long>(alloc_fail),
                  static_cast<unsigned long long>(alloc_retry),
                  static_cast<unsigned long long>(alloc_backoff),
                  static_cast<unsigned long long>(deg_enter),
                  static_cast<unsigned long long>(deg_exit),
                  static_cast<unsigned long long>(deg_bytes),
                  static_cast<unsigned long long>(wd_trips));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"epoch\":{\"commits\":%llu,\"fast_commits\":%llu,"
                  "\"inodes_committed\":%llu,\"slots_flushed\":%llu,"
                  "\"auto_flushes\":%llu,\"finalizes\":%llu},"
                  "\"policy\":{\"evaluations\":%llu,"
                  "\"to_write_through\":%llu,\"to_shadow\":%llu,"
                  "\"write_back_bytes\":%llu",
                  static_cast<unsigned long long>(ep_commits),
                  static_cast<unsigned long long>(ep_fast),
                  static_cast<unsigned long long>(ep_inodes),
                  static_cast<unsigned long long>(ep_slots),
                  static_cast<unsigned long long>(ep_auto),
                  static_cast<unsigned long long>(ep_final),
                  static_cast<unsigned long long>(pol_evals),
                  static_cast<unsigned long long>(pol_to_wt),
                  static_cast<unsigned long long>(pol_to_sh),
                  static_cast<unsigned long long>(pol_wb));
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"txn\":{\"prepares\":%llu,\"commits\":%llu,"
                  "\"aborts\":%llu,\"recovered\":%llu,"
                  "\"discarded\":%llu",
                  static_cast<unsigned long long>(txn_prep),
                  static_cast<unsigned long long>(txn_commit),
                  static_cast<unsigned long long>(txn_abort),
                  static_cast<unsigned long long>(txn_recov),
                  static_cast<unsigned long long>(txn_disc));
    json += buf;
    // The trailing "}" of this object comes from the next block's
    // leading "}," — same chaining as every object above.
    std::snprintf(buf, sizeof(buf),
                  "},\"health\":{\"engine\":\"%s\","
                  "\"faults_recorded\":%llu,\"inode_fences\":%llu,"
                  "\"inode_unfences\":%llu,\"repairs_ok\":%llu,"
                  "\"repairs_failed\":%llu,\"condemned\":%llu,"
                  "\"verified_reads\":%llu,\"rejected_reads\":%llu,"
                  "\"recovery_fenced\":%u,\"recovery_condemned\":%u",
                  h_engine, static_cast<unsigned long long>(h_faults),
                  static_cast<unsigned long long>(h_fences),
                  static_cast<unsigned long long>(h_unfences),
                  static_cast<unsigned long long>(h_rep_ok),
                  static_cast<unsigned long long>(h_rep_bad),
                  static_cast<unsigned long long>(h_cond),
                  static_cast<unsigned long long>(h_vreads),
                  static_cast<unsigned long long>(h_rreads),
                  recovery_.fencedInodesFound,
                  recovery_.condemnedInodesFound);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "},\"tree\":{\"coarse_log_writes\":%llu,"
                  "\"leaf_log_writes\":%llu,\"fine_sub_writes\":%llu,"
                  "\"min_tree_hits\":%llu,\"min_tree_misses\":%llu},"
                  "\"recovery\":{\"live_entries_replayed\":%u,"
                  "\"records_scanned\":%u,\"files_found\":%u,"
                  "\"nanos\":%llu,\"corrupt_records_quarantined\":%u,"
                  "\"salvaged_bytes\":%llu,\"poisoned_ranges_skipped\":%u,"
                  "\"superblock_recovered\":%s,"
                  "\"degraded_files_cleared\":%u,"
                  "\"epochs_replayed\":%u,\"epochs_discarded\":%u,"
                  "\"policy_flags_cleared\":%u,"
                  "\"txns_recovered\":%u,\"txns_discarded\":%u,"
                  "\"txns_quarantined\":%u}}",
                  static_cast<unsigned long long>(coarse),
                  static_cast<unsigned long long>(leafw),
                  static_cast<unsigned long long>(fine),
                  static_cast<unsigned long long>(mt_hits),
                  static_cast<unsigned long long>(mt_misses),
                  recovery_.liveEntriesReplayed, recovery_.recordsScanned,
                  recovery_.filesFound,
                  static_cast<unsigned long long>(recovery_.nanos),
                  recovery_.corruptRecordsQuarantined,
                  static_cast<unsigned long long>(recovery_.salvagedBytes),
                  recovery_.poisonedRangesSkipped,
                  recovery_.superblockRecovered ? "true" : "false",
                  recovery_.degradedFilesCleared, recovery_.epochsReplayed,
                  recovery_.epochsDiscarded, recovery_.policyFlagsCleared,
                  recovery_.txnsRecovered, recovery_.txnsDiscarded,
                  recovery_.txnsQuarantined);
    json += buf;
    return report;
}

std::string
MgspFs::traceExport() const
{
    return trace::exportJson();
}

void
MgspFs::persistFileSize(OpenInode *inode, u64 new_size, bool allow_shrink)
{
    const u64 off = layout_.inodeOff(inode->inodeIdx) +
                    offsetof(InodeRecord, fileSize);
    if (allow_shrink) {  // truncate path: exclusive by contract
        inode->fileSize.store(new_size, std::memory_order_release);
        device_->store64(off, new_size);
        device_->flush(off, 8);
        return;
    }
    // Monotonic: concurrent extenders in disjoint subtrees may commit
    // out of order; the size must never regress.
    u64 current = inode->fileSize.load(std::memory_order_relaxed);
    while (current < new_size &&
           !inode->fileSize.compare_exchange_weak(
               current, new_size, std::memory_order_acq_rel))
        ;
    if (current >= new_size)
        return;
    device_->store64(off, new_size);
    device_->flush(off, 8);
}

Status
MgspFs::doWrite(OpenInode *inode, u64 offset, ConstSlice src)
{
    MGSP_RETURN_IF_ERROR(writeGate(inode));
    if (src.empty())
        return Status::ok();
    if (offset + src.size() > inode->capacity)
        return Status::outOfSpace("write beyond file capacity");

    // A write that skips past EOF creates a hole; materialise it as
    // zeros first so the gap never exposes stale extent bytes
    // (cheaper than tracking unwritten extents, and rare).
    const u64 size_now = inode->fileSize.load(std::memory_order_acquire);
    if (offset > size_now) {
        static constexpr u64 kZeroChunk = 1 * MiB;
        std::vector<u8> zeros(std::min(offset - size_now, kZeroChunk), 0);
        u64 gap = size_now;
        while (gap < offset) {
            const u64 n = std::min<u64>(offset - gap, kZeroChunk);
            MGSP_RETURN_IF_ERROR(
                doAtomicChunkOrSplit(inode, gap, ConstSlice(zeros.data(),
                                                            n)));
            gap += n;
        }
    }

    MGSP_RETURN_IF_ERROR(doAtomicChunkOrSplit(inode, offset, src));
    logicalBytes_.fetch_add(src.size(), std::memory_order_relaxed);
    return Status::ok();
}

Status
MgspFs::doAtomicChunkOrSplit(OpenInode *inode, u64 offset, ConstSlice src)
{
    // Operations needing more bitmap slots than one metadata entry
    // holds are split into independently atomic chunks (cf. the
    // paper's 2 GB single-write bound).
    u64 pos = offset;
    const u8 *p = src.data();
    u64 remaining = src.size();
    while (remaining > 0) {
        u64 chunk = remaining;
        while (inode->tree->planSlotCount(pos, chunk) >
               MetaLogEntry::kMaxSlots)
            chunk = std::max<u64>(chunk / 2, 1);
        const ConstSlice piece(p, chunk);

        // A degraded file keeps bypassing the shadow path until the
        // pool recovers above the low watermark; probe for recovery
        // first so a drained pool flips it back promptly.
        if (inode->degraded.load(std::memory_order_acquire))
            maybeExitDegraded(inode);

        Status s;
        if (inode->degraded.load(std::memory_order_acquire)) {
            s = doDegradedWrite(inode, pos, piece);
        } else {
            // Epoch mode substitutes the group-commit write path; the
            // retry/backoff policy below applies unchanged (an epoch
            // chunk never retries while holding the epoch mutex).
            s = epochOn_ ? doEpochChunk(inode, pos, piece)
                         : doAtomicChunk(inode, pos, piece);
            if (isResourceExhaustion(s)) {
                // Exhaustion is usually transient (a cleaner pass
                // reclaims dead log blocks; a raced claim frees up):
                // kick the cleaner and retry under the shared bounded
                // policy instead of the old unbounded/ad-hoc spins.
                BoundedBackoff backoff(config_.resourceRetryAttempts,
                                       config_.resourceRetryDeadlineNanos,
                                       config_.backoffInitialNanos,
                                       config_.backoffMaxNanos);
                resourceCounters_.allocFail->add(1);
                while (backoff.nextAttempt()) {
                    resourceCounters_.allocRetry->add(1);
                    if (cleanerOn_)
                        cleanCounters_.oomRetries->add(1);
                    nudgeCleanerForSpace();
                    s = epochOn_ ? doEpochChunk(inode, pos, piece)
                                 : doAtomicChunk(inode, pos, piece);
                    if (!isResourceExhaustion(s))
                        break;
                    resourceCounters_.allocFail->add(1);
                }
                resourceCounters_.backoffNanos->add(backoff.pausedNanos());
                if (backoff.deadlineExceeded())
                    watchdogTrip("write retry sequence",
                                 backoff.elapsedNanos());
                // Retry budget spent and still no shadow resources:
                // degrade to write-through rather than failing the
                // write, when the config allows it.
                if (isResourceExhaustion(s) && config_.degradedWriteThrough)
                    s = doDegradedWrite(inode, pos, piece);
            }
        }
        MGSP_RETURN_IF_ERROR(s);
        pos += chunk;
        p += chunk;
        remaining -= chunk;
    }
    return Status::ok();
}

Status
MgspFs::doAtomicChunk(OpenInode *inode, u64 offset, ConstSlice src)
{
    // Extending writes (entirely beyond EOF) go straight into the
    // home extent: the atomic commit is the file-size bump, so no
    // shadow log is needed — the paper's root-log case of Fig. 4 (1)
    // generalised to appends. The claim frontier guarantees no
    // shadow-log claim covers the target range.
    if (offset >= inode->fileSize.load(std::memory_order_acquire) &&
        offset >= inode->claimFrontier.load(std::memory_order_acquire)) {
        Status s = tryAppendFastPath(inode, offset, src);
        if (s.code() != StatusCode::Busy)  // Busy: raced, take slow path
            return s;
    }

    // Shadow logging off => classic redo logging with a per-op
    // checkpoint; that requires exclusive access for the write-back.
    const bool file_lock_mode = config_.lockMode == LockMode::FileLock ||
                                !config_.enableShadowLog;
    const bool greedy =
        !file_lock_mode && greedyOn_ &&
        inode->refCount.load(std::memory_order_acquire) == 1;

    stats::OpTrace trace(stats::OpType::Write, offset, src.size(),
                         statsOn_);
    trace.stage(stats::Stage::Claim);

    // Claim the entry before any lock: a thread probing for a free
    // entry must never hold a lock an entry owner is waiting on. A
    // single bounded attempt here — doAtomicChunkOrSplit owns the
    // retry/backoff policy for the whole chunk.
    StatusOr<u32> entry_or = metaLog_->claim(config_.metaClaimSweeps);
    if (!entry_or.isOk()) {
        trace.setFailed();
        return entry_or.status();
    }
    const u32 entry = *entry_or;

    trace.stage(stats::Stage::Lock);
    std::vector<HeldLock> locks;
    TreeNode *greedy_node = nullptr;
    if (file_lock_mode) {
        inode->fileLock.lock();
    } else if (greedy) {
        // Always the whole-file covering node, never the op's own
        // covering node: greedy ops skip ancestor intention locks, so
        // two greedy ops locking nested covers (a reader's parent R
        // over a writer's leaf W) would not conflict and could race
        // role-switch stores into the shared base extent. One
        // canonical node makes every greedy/non-greedy pair on this
        // file meet in the MGL table.
        greedy_node = inode->tree->coveringNode(0, inode->capacity);
        greedy_node->lock.acquire(MglMode::W);
        // Optimistic readers take no locks even against a sole-handle
        // greedy writer, so the covering node must still advertise the
        // write through its version.
        greedy_node->version.writeBegin();
    }
    auto unlock_all = [&] {
        if (file_lock_mode) {
            inode->fileLock.unlock();
        } else if (greedy_node != nullptr) {
            greedy_node->version.writeEnd();
            greedy_node->lock.release(MglMode::W);
        }
        ShadowTree::releaseLocks(&locks);
    };

    trace.stage(stats::Stage::DataWrite);
    StagedMetadata staged;
    staged.inode = inode->inodeIdx;
    staged.length = static_cast<u32>(src.size());
    staged.offset = offset;
    const u64 old_size = inode->fileSize.load(std::memory_order_acquire);
    const u64 new_size = std::max(old_size, offset + src.size());
    staged.newFileSize = new_size;

    Status s = inode->tree->performWrite(offset, src, &staged, &locks,
                                         file_lock_mode || greedy);
    if (!s.isOk()) {
        metaLog_->release(entry);
        unlock_all();
        trace.setFailed();
        return s;
    }

    trace.stage(stats::Stage::CommitFence);
    device_->fence();               // data + records + existing durable
    metaLog_->commit(entry, staged);  // flush + fence: COMMIT point

    trace.stage(stats::Stage::BitmapApply);
    inode->tree->applyStaged(staged);
    const bool size_changed = new_size != old_size;
    if (size_changed)
        persistFileSize(inode, new_size);
    // Single-word applies are inherently atomic, so the apply flush
    // and the entry-outdated flush may share one fence; multi-word
    // applies need the apply durable first.
    if (staged.usedSlots + (size_changed ? 1 : 0) > 1)
        device_->fence();
    metaLog_->markOutdated(entry);
    device_->fence();  // entry dead before conflicting ops may start
    metaLog_->release(entry);

    unlock_all();
    trace.setSlots(staged.usedSlots);
    trace.orGranMask(staged.granMask);
    trace.endStage();

    // Slow-path claims may now extend to the next fine-grain
    // boundary past the write; advance the frontier monotonically.
    const u64 claim_end =
        alignUp(offset + src.size(), config_.fineGrainSize());
    u64 frontier = inode->claimFrontier.load(std::memory_order_relaxed);
    while (frontier < claim_end &&
           !inode->claimFrontier.compare_exchange_weak(
               frontier, claim_end, std::memory_order_acq_rel))
        ;

    noteDirty(inode, offset, src.size(), trace.opId());

    if (!config_.enableShadowLog) {
        // Ablation: checkpoint immediately — the classic double write.
        trace.stage(stats::Stage::WriteBack);
        inode->fileLock.lock();
        Status wb = inode->tree->writeBackRange(offset, src.size());
        inode->fileLock.unlock();
        trace.endStage();
        MGSP_RETURN_IF_ERROR(wb);
    }
    return Status::ok();
}

Status
MgspFs::tryAppendFastPath(OpenInode *inode, u64 offset, ConstSlice src)
{
    const bool file_lock_mode = config_.lockMode == LockMode::FileLock ||
                                !config_.enableShadowLog;
    stats::OpTrace trace(stats::OpType::Append, offset, src.size(),
                         statsOn_);
    trace.stage(stats::Stage::Claim);
    StatusOr<u32> entry_or = metaLog_->claim(config_.metaClaimSweeps);
    if (!entry_or.isOk()) {
        trace.abandon();  // nothing happened; the caller retries
        return entry_or.status();
    }
    const u32 entry = *entry_or;
    trace.stage(stats::Stage::Lock);
    TreeNode *covering = nullptr;
    std::vector<TreeNode *> ancestors;
    if (file_lock_mode) {
        inode->fileLock.lock();
    } else {
        // Full MGL discipline: IW down the path, W on the covering
        // node, so concurrent shadow-log writers stay excluded.
        covering = inode->tree->coveringNode(offset, src.size());
        for (TreeNode *n = covering->parent; n != nullptr; n = n->parent)
            ancestors.push_back(n);
        for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it)
            (*it)->lock.acquire(MglMode::IW);
        covering->lock.acquire(MglMode::W);
        // Appends land beyond every reader's EOF-clamped range, but
        // bump anyway so optimistic readers racing the size update
        // retry instead of relying on that argument.
        covering->version.writeBegin();
    }
    auto unlock_all = [&] {
        if (file_lock_mode) {
            inode->fileLock.unlock();
        } else {
            covering->version.writeEnd();
            covering->lock.release(MglMode::W);
            for (TreeNode *n : ancestors)
                n->lock.release(MglMode::IW);
        }
    };
    const u64 old_size = inode->fileSize.load(std::memory_order_acquire);
    if (offset < old_size ||
        offset < inode->claimFrontier.load(std::memory_order_acquire)) {
        // Raced with another writer extending the file: retry via the
        // shadow-log path.
        metaLog_->release(entry);
        unlock_all();
        trace.abandon();  // the slow path will trace the real write
        return Status::busy("append raced");
    }
    // No shadow-log claim can cover bytes at or beyond the claim
    // frontier (slow-path writes advance it; truncate write-backs
    // clear shrunk ranges), so the home extent is authoritative for
    // the target range.
    trace.stage(stats::Stage::DataWrite);
    device_->write(inode->extentOff + offset, src.data(), src.size());
    device_->flush(inode->extentOff + offset, src.size());

    trace.stage(stats::Stage::CommitFence);
    device_->fence();  // data durable before the commit record

    StagedMetadata staged;
    staged.inode = inode->inodeIdx;
    staged.length = static_cast<u32>(src.size());
    staged.offset = offset;
    staged.newFileSize = offset + src.size();
    metaLog_->commit(entry, staged);  // COMMIT: the size becomes real

    trace.stage(stats::Stage::BitmapApply);
    persistFileSize(inode, staged.newFileSize);
    metaLog_->markOutdated(entry);
    device_->fence();
    metaLog_->release(entry);
    unlock_all();
    trace.orGranMask(stats::kGranInPlace);
    return Status::ok();
}

StatusOr<u64>
MgspFs::doRead(OpenInode *inode, u64 offset, MutSlice dst)
{
    const u64 size = inode->fileSize.load(std::memory_order_acquire);
    if (offset >= size || dst.empty())
        return u64{0};
    const u64 n = std::min<u64>(dst.size(), size - offset);
    if (epochOn_)
        inode->tree->noteAccess(offset, /*is_write=*/false);

    // DRAM frame lookup first. Bypassed whenever a fault plane is
    // live — degraded files, armed poison — and by DontCache advice,
    // so cached bytes can never mask what the tree paths would
    // surface. A hit skips the NVM latency charge entirely: the copy
    // comes from DRAM, which is the whole point of the cache — and it
    // skips the op-trace machinery too: two clock reads plus the
    // histogram and ring updates would roughly double the cost of a
    // DRAM hit, so hits are accounted by cache.hit alone and the
    // per-stage read records see only misses.
    const u8 hint_raw = inode->accessHint.load(std::memory_order_relaxed);
    const auto hint = static_cast<AccessHint>(hint_raw);
    // A fenced/repairing file is itself a live fault plane: every
    // read must go through the tree paths (and the CRC proof below),
    // never a DRAM frame that may predate the fault.
    const bool fenced_read =
        inodeHealth(inode) != FileHealthState::Live;
    const bool cache_ok = cacheOn_ && hint != AccessHint::DontCache &&
                          !fenced_read &&
                          !inode->degraded.load(std::memory_order_relaxed) &&
                          !device_->anyPoisoned();
    const u64 frame_size = cache_ok ? cache_->frameSize() : 0;
    const bool one_frame =
        cache_ok && n <= frame_size &&
        (offset & ~(frame_size - 1)) ==
            ((offset + n - 1) & ~(frame_size - 1));
    if (one_frame &&
        cache_->lookup(inode->inodeIdx, offset, dst.data(), n))
        return n;

    const bool file_lock_mode = config_.lockMode == LockMode::FileLock ||
                                !config_.enableShadowLog;
    const bool greedy =
        !file_lock_mode && greedyOn_ &&
        inode->refCount.load(std::memory_order_acquire) == 1;

    stats::OpTrace trace(stats::OpType::Read, offset, n, statsOn_);

    // Whole-frame miss: the bytes this read is about to fetch are
    // exactly one frame's contents, so an admitted fill rides the
    // user's own optimistic read — snapshot exported, dst installed
    // directly, no second tree walk and no second latency charge.
    // Partial-frame misses go through maybeCachePopulate's separate
    // fill read instead.
    const bool whole_frame =
        one_frame && optimisticOn_ && hint != AccessHint::Sequential &&
        (offset & (frame_size - 1)) == 0 &&
        (n == frame_size || offset + n == size);
    // One admission decision per miss: a whole-frame read consults
    // the doorkeeper here and nowhere else, so a Normal-hint extent
    // really does need a second miss before it earns a frame.
    const bool fill_inline =
        whole_frame && cache_->admitCheck(inode->inodeIdx, offset,
                                          hint == AccessHint::ReadMostly);
    const u64 fill_gen0 =
        fill_inline ? cache_->generation(inode->inodeIdx) : 0;

    // Optimistic lock-free path: descend without any IR/R
    // acquisitions, copy, and seqlock-validate the per-node versions
    // consulted. Any concurrent writer or cleaner invalidates the
    // attempt; after a few failures fall back to the locked path so
    // readers cannot starve under sustained write pressure.
    // Fenced reads skip it: they take the locked path so the
    // intactness proof below sees a stable tree.
    if (optimisticOn_ && !fenced_read) {
        trace.stage(stats::Stage::OptimisticRead);
        VersionSnapshot snap;
        for (int attempt = 0; attempt < 3; ++attempt) {
            if (inode->tree->tryReadOptimistic(
                    offset, MutSlice(dst.data(), n),
                    fill_inline ? &snap : nullptr)) {
                device_->latency().chargeRead(n);
                trace.endStage();
                readCounters_.optimistic->add(1);
                if (fill_inline) {
                    cache_->populate(inode->inodeIdx, offset, dst.data(),
                                     static_cast<u32>(n), snap,
                                     fill_gen0);
                } else if (one_frame && !whole_frame) {
                    // Partial-frame miss: the separate fill read does
                    // its own (single) admission check. Whole-frame
                    // misses the doorkeeper rejected stay out.
                    maybeCachePopulate(inode, offset, hint, &trace);
                }
                return n;
            }
            readCounters_.retry->add(1);
        }
        readCounters_.fallback->add(1);
    }

    // Bounded retry on MediaError: each locked attempt that touches a
    // transiently poisoned range advances its heal countdown (the
    // read *is* the retraining probe), so short UC episodes are ridden
    // out here instead of surfacing to every caller. Permanent faults
    // still fail after mediaErrorRetries + 1 attempts.
    Status s = Status::ok();
    for (u32 attempt = 0;; ++attempt) {
        trace.stage(stats::Stage::Lock);
        std::vector<HeldLock> locks;
        TreeNode *greedy_node = nullptr;
        if (file_lock_mode) {
            inode->fileLock.lockShared();
        } else if (greedy) {
            // Whole-file cover, as in doAtomicChunk: nested per-op
            // covers would let a greedy R slide past a greedy W.
            greedy_node = inode->tree->coveringNode(0, inode->capacity);
            greedy_node->lock.acquire(MglMode::R);
        }

        trace.stage(stats::Stage::Read);
        s = inode->tree->performRead(offset, MutSlice(dst.data(), n),
                                     &locks, file_lock_mode || greedy);
        device_->latency().chargeRead(n);

        if (file_lock_mode)
            inode->fileLock.unlockShared();
        else if (greedy_node != nullptr)
            greedy_node->lock.release(MglMode::R);
        ShadowTree::releaseLocks(&locks);
        trace.endStage();

        if (s.code() != StatusCode::MediaError ||
            attempt >= config_.mediaErrorRetries)
            break;
        faultCounters_.mediaRetries->add(1);
    }

    if (!s.isOk()) {
        trace.setFailed();
        // Media-retry exhaustion is the read path's health signal:
        // the retries above already rode out every transient episode,
        // so what is left is persistent media rot. No locks are held
        // here, so fencing may run inline.
        if (s.code() == StatusCode::MediaError)
            noteInodeFault(inode, 1, "media-retry exhaustion");
        return s;
    }
    // A fenced file serves only provably-intact bytes: after the
    // locked read, re-verify every shadow unit the range touches and
    // reject the read if any fails its CRC (or sits on poison). The
    // scan takes its own tree locks — none are held here.
    if (healthOn_ && fenced_read) {
        const ScrubStats verdict = inode->tree->verifyRange(offset, n);
        if (verdict.crcMismatches != 0 || verdict.poisonSkipped != 0) {
            healthCounters_.rejectedReads->add(1);
            return Status::corruption(
                "fenced read touches corrupt shadow-log units");
        }
        healthCounters_.verifiedReads->add(1);
    }
    // Locked-fallback fill. An admitted whole-frame miss re-checks
    // admission inside; the doorkeeper slot already holds its key, so
    // the re-check is idempotent. A rejected one stays rejected.
    if (one_frame && (!whole_frame || fill_inline))
        maybeCachePopulate(inode, offset, hint, &trace);
    return n;
}

/**
 * Fill attempt after a successful partial-frame or locked-fallback
 * miss read: re-reads the whole frame extent optimistically (the fill
 * needs the frame's full bytes plus the consulted version snapshot,
 * which the user's arbitrary-range read does not provide) and
 * installs it. Whole-frame optimistic misses skip this entirely —
 * their fill rides the user's own read in doRead. Failure of any step
 * just means no frame this time — the next miss retries. The extra
 * NVM read is charged honestly; it amortizes over every subsequent
 * hit.
 */
void
MgspFs::maybeCachePopulate(OpenInode *inode, u64 offset, AccessHint hint,
                           stats::OpTrace *trace)
{
    if (hint == AccessHint::Sequential || hint == AccessHint::DontCache)
        return;
    const bool eager = hint == AccessHint::ReadMostly;
    const u64 fsz = cache_->frameSize();
    const u64 frame_off = offset - offset % fsz;
    if (!cache_->admitCheck(inode->inodeIdx, frame_off, eager))
        return;
    const u64 size = inode->fileSize.load(std::memory_order_acquire);
    if (frame_off >= size)
        return;
    const u64 vlen = std::min(fsz, size - frame_off);
    const u64 gen0 = cache_->generation(inode->inodeIdx);
    std::unique_ptr<u8[]> buf(new u8[vlen]);
    trace->stage(stats::Stage::ReadCache);
    VersionSnapshot snap;
    if (inode->tree->tryReadOptimistic(frame_off, MutSlice(buf.get(), vlen),
                                       &snap)) {
        device_->latency().chargeRead(vlen);
        cache_->populate(inode->inodeIdx, frame_off, buf.get(),
                         static_cast<u32>(vlen), snap, gen0);
    }
    trace->endStage();
}

Status
MgspFs::writeBatch(File *file, const std::vector<BatchWrite> &batch)
{
    auto *handle = dynamic_cast<MgspFile *>(file);
    if (handle == nullptr || handle->owner() != this)
        return Status::invalidArgument("file is not an MGSP handle");
    if (batch.empty())
        return Status::ok();
    // Epoch mode has no per-op commit entry for a batch to share;
    // InvalidArgument routes pwritev to its span-by-span fallback,
    // whose spans become ordinary epoch ops.
    if (epochOn_)
        return Status::invalidArgument(
            "atomic batches bypass the epoch group commit");
    OpenInode *inode = handle->inode();
    MGSP_RETURN_IF_ERROR(writeGate(inode));

    // Sort by offset: establishes the deadlock-free MGL lock order
    // and makes the overlap check trivial.
    std::vector<BatchWrite> sorted(batch);
    std::sort(sorted.begin(), sorted.end(),
              [](const BatchWrite &a, const BatchWrite &b) {
                  return a.offset < b.offset;
              });
    u32 total_slots = 0;
    u64 prev_end = 0;
    u64 batch_end = 0;
    for (const BatchWrite &w : sorted) {
        if (w.data.empty())
            return Status::invalidArgument("empty batch write");
        if (w.offset < prev_end)
            return Status::invalidArgument("batch writes overlap");
        if (w.offset + w.data.size() > inode->capacity)
            return Status::outOfSpace("batch write beyond capacity");
        prev_end = w.offset + w.data.size();
        batch_end = std::max(batch_end, prev_end);
        total_slots += inode->tree->planSlotCount(w.offset,
                                                  w.data.size());
        if (total_slots > MetaLogEntry::kMaxSlots)
            return Status::invalidArgument(
                "batch needs more bitmap slots than one metadata-log "
                "entry holds");
    }

    // Materialise any hole below the first write (content-neutral,
    // so it may commit separately before the atomic batch).
    const u64 size_now = inode->fileSize.load(std::memory_order_acquire);
    if (sorted.front().offset > size_now) {
        std::vector<u8> zeros(sorted.front().offset - size_now, 0);
        MGSP_RETURN_IF_ERROR(doWrite(
            inode, size_now, ConstSlice(zeros.data(), zeros.size())));
    }

    const bool file_lock_mode = config_.lockMode == LockMode::FileLock ||
                                !config_.enableShadowLog;
    stats::OpTrace trace(stats::OpType::Batch, sorted.front().offset,
                         batch_end - sorted.front().offset, statsOn_);
    trace.stage(stats::Stage::Claim);
    // Batches get the bounded claim retry but never the degraded
    // fallback: write-through cannot honour all-or-nothing.
    StatusOr<u32> entry_or = claimEntryWithRetry();
    if (!entry_or.isOk()) {
        trace.setFailed();
        return entry_or.status();
    }
    const u32 entry = *entry_or;
    trace.stage(stats::Stage::Lock);
    std::vector<HeldLock> locks;
    const bool greedy =
        !file_lock_mode && greedyOn_ &&
        inode->refCount.load(std::memory_order_acquire) == 1;
    TreeNode *greedy_node = nullptr;
    if (file_lock_mode) {
        inode->fileLock.lock();
    } else if (greedy) {
        // Whole-file cover, as in doAtomicChunk: nested per-op
        // covers would let concurrent greedy ops miss each other.
        greedy_node = inode->tree->coveringNode(0, inode->capacity);
        greedy_node->lock.acquire(MglMode::W);
        // As in doAtomicChunk: lock-free readers need the version
        // signal even when the greedy single-handle path skips MGL.
        greedy_node->version.writeBegin();
    }
    auto unlock_all = [&] {
        if (file_lock_mode) {
            inode->fileLock.unlock();
        } else if (greedy_node != nullptr) {
            greedy_node->version.writeEnd();
            greedy_node->lock.release(MglMode::W);
        }
        ShadowTree::releaseLocks(&locks);
    };

    trace.stage(stats::Stage::DataWrite);
    StagedMetadata staged;
    staged.inode = inode->inodeIdx;
    staged.length = static_cast<u32>(batch_end - sorted.front().offset);
    staged.offset = sorted.front().offset;
    const u64 old_size = inode->fileSize.load(std::memory_order_acquire);
    const u64 new_size = std::max(old_size, batch_end);
    staged.newFileSize = new_size;

    for (const BatchWrite &w : sorted) {
        Status s = inode->tree->performWrite(w.offset, w.data, &staged,
                                             &locks,
                                             file_lock_mode || greedy);
        if (!s.isOk()) {
            metaLog_->release(entry);
            unlock_all();
            trace.setFailed();
            return s;
        }
    }

    trace.stage(stats::Stage::CommitFence);
    device_->fence();                 // all batch data durable
    metaLog_->commit(entry, staged);  // ONE commit for the whole batch

    trace.stage(stats::Stage::BitmapApply);
    inode->tree->applyStaged(staged);
    const bool size_changed = new_size != old_size;
    if (size_changed)
        persistFileSize(inode, new_size);
    if (staged.usedSlots + (size_changed ? 1 : 0) > 1)
        device_->fence();
    metaLog_->markOutdated(entry);
    device_->fence();
    metaLog_->release(entry);
    unlock_all();
    trace.setSlots(staged.usedSlots);
    trace.orGranMask(staged.granMask);
    trace.endStage();

    // Frontier: slow-path claims may reach past each write's end.
    const u64 claim_end = alignUp(batch_end, config_.fineGrainSize());
    u64 frontier = inode->claimFrontier.load(std::memory_order_relaxed);
    while (frontier < claim_end &&
           !inode->claimFrontier.compare_exchange_weak(
               frontier, claim_end, std::memory_order_acq_rel))
        ;
    for (const BatchWrite &w : sorted) {
        logicalBytes_.fetch_add(w.data.size(), std::memory_order_relaxed);
        noteDirty(inode, w.offset, w.data.size(), trace.opId());
    }

    if (!config_.enableShadowLog) {
        trace.stage(stats::Stage::WriteBack);
        inode->fileLock.lock();
        Status wb = inode->tree->writeBackRange(
            sorted.front().offset, batch_end - sorted.front().offset);
        inode->fileLock.unlock();
        trace.endStage();
        MGSP_RETURN_IF_ERROR(wb);
    }
    return Status::ok();
}

// --- cross-file transactions (DESIGN.md §17) -------------------------

StatusOr<std::unique_ptr<FileTxn>>
MgspFs::beginTxn()
{
    // The no-shadow ablation writes in place: there is nothing to
    // stage, so multi-file all-or-nothing is unachievable.
    if (!config_.enableShadowLog)
        return Status::unsupported(
            "cross-file transactions need the shadow log");
    // Epoch mode has no per-op commit entries for prepares to ride;
    // same exclusion as writeBatch.
    if (epochOn_)
        return Status::invalidArgument(
            "cross-file transactions bypass the epoch group commit");
    return {std::make_unique<MgspTxn>(this)};
}

StatusOr<u32>
MgspFs::txnClaimSlot()
{
    auto tryClaim = [&]() -> int {
        std::lock_guard<std::mutex> guard(txnSlotMutex_);
        for (u32 s = 0; s < TxnCommitRecord::kSlots; ++s) {
            if ((txnSlotBusy_ & (1u << s)) == 0) {
                txnSlotBusy_ |= 1u << s;
                return static_cast<int>(s);
            }
        }
        return -1;
    };
    int slot = tryClaim();
    if (slot >= 0)
        return static_cast<u32>(slot);
    // All kSlots records carry in-flight commits: transient
    // exhaustion, same bounded-backoff policy as the log claim.
    BoundedBackoff backoff(config_.resourceRetryAttempts,
                           config_.resourceRetryDeadlineNanos,
                           config_.backoffInitialNanos,
                           config_.backoffMaxNanos);
    resourceCounters_.allocFail->add(1);
    while (backoff.nextAttempt()) {
        resourceCounters_.allocRetry->add(1);
        slot = tryClaim();
        if (slot >= 0)
            break;
        resourceCounters_.allocFail->add(1);
    }
    resourceCounters_.backoffNanos->add(backoff.pausedNanos());
    if (backoff.deadlineExceeded())
        watchdogTrip("txn-commit slot claim", backoff.elapsedNanos());
    if (slot < 0)
        return Status::resourceBusy("all txn-commit slots busy");
    return static_cast<u32>(slot);
}

void
MgspFs::txnReleaseSlot(u32 slot)
{
    std::lock_guard<std::mutex> guard(txnSlotMutex_);
    txnSlotBusy_ &= ~(1u << slot);
}

void
MgspFs::txnPublishRecord(u32 slot, u64 txn_id, u32 participants)
{
    TxnCommitRecord rec{};
    rec.magic = TxnCommitRecord::kMagic;
    rec.txnId = txn_id;
    rec.participants = participants;
    rec.checksum = rec.computeChecksum();
    // Copy 0's persist IS the commit point: before it the txn is
    // invisible (prepares discard at recovery), after it the txn is
    // committed. Copy 1 lands behind its own persist purely for
    // media redundancy — recovery accepts either valid copy.
    device_->write(layout_.txnSlotOff(slot, 0), &rec, sizeof(rec));
    device_->persist(layout_.txnSlotOff(slot, 0), sizeof(rec));
    device_->write(layout_.txnSlotOff(slot, 1), &rec, sizeof(rec));
    device_->persist(layout_.txnSlotOff(slot, 1), sizeof(rec));
}

void
MgspFs::txnRetireRecord(u32 slot)
{
    // Retired BEFORE the prepares are outdated (see txnCommit): a
    // valid record must always imply its full prepare set is live.
    device_->fill(layout_.txnSlotOff(slot, 0), 0,
                  TxnCommitRecord::kSlotStride);
    device_->flush(layout_.txnSlotOff(slot, 0),
                   TxnCommitRecord::kSlotStride);
    device_->fence();
}

Status
MgspFs::txnCommit(const std::vector<TxnWrite> &writes)
{
    MGSP_CHECK(!epochOn_ && config_.enableShadowLog);

    // ---- validation & per-participant grouping ------------------
    // One prepare entry covers a GROUP of writes whose combined
    // bitmap-slot demand fits one metadata-log entry; a file whose
    // writes need more contributes several groups, all stamped with
    // the same txn id (the commit record counts prepare entries, not
    // files, so recovery is indifferent to the split).
    struct Group
    {
        std::vector<const TxnWrite *> writes;  ///< sorted by offset
        u64 frontOff = 0;
        u64 end = 0;
        u32 entry = 0;  ///< claimed metadata-log index
        StagedMetadata staged;
    };
    struct Participant
    {
        OpenInode *inode = nullptr;
        std::vector<const TxnWrite *> writes;  ///< sorted by offset
        std::vector<Group> groups;
        u64 batchEnd = 0;
        u64 newSize = 0;
        u64 oldSize = 0;
        bool lockedFile = false;
        std::vector<HeldLock> locks;
    };
    // Keyed by inodeIdx: iteration order IS the deadlock-free lock
    // acquisition order across concurrent committers.
    std::map<u32, Participant> parts;
    for (const TxnWrite &w : writes) {
        MGSP_CHECK(!w.data.empty());
        Participant &p = parts[w.inode->inodeIdx];
        p.inode = w.inode;
        p.writes.push_back(&w);
    }
    // All-or-nothing applies to admission too: one fenced participant
    // rejects the whole transaction before anything is claimed.
    for (auto &[idx, p] : parts) {
        (void)idx;
        MGSP_RETURN_IF_ERROR(writeGate(p.inode));
    }
    u32 total_groups = 0;
    for (auto &[idx, p] : parts) {
        (void)idx;
        std::sort(p.writes.begin(), p.writes.end(),
                  [](const TxnWrite *a, const TxnWrite *b) {
                      return a->offset < b->offset;
                  });
        u64 prev_end = 0;
        u32 group_slots = 0;
        Group cur;
        for (const TxnWrite *w : p.writes) {
            if (w->offset < prev_end)
                return Status::invalidArgument("txn writes overlap");
            if (w->offset + w->data.size() > p.inode->capacity)
                return Status::outOfSpace("txn write beyond capacity");
            prev_end = w->offset + w->data.size();
            p.batchEnd = std::max(p.batchEnd, prev_end);
            const u32 need = p.inode->tree->planSlotCount(
                w->offset, w->data.size());
            if (need > MetaLogEntry::kMaxSlots)
                return Status::invalidArgument(
                    "one txn write needs more bitmap slots than a "
                    "metadata-log entry holds; split it");
            if (!cur.writes.empty() &&
                group_slots + need > MetaLogEntry::kMaxSlots) {
                p.groups.push_back(std::move(cur));
                cur = Group{};
                group_slots = 0;
            }
            if (cur.writes.empty())
                cur.frontOff = w->offset;
            cur.writes.push_back(w);
            cur.end = w->offset + w->data.size();
            group_slots += need;
        }
        p.groups.push_back(std::move(cur));
        total_groups += static_cast<u32>(p.groups.size());
        // Materialise any hole below the participant's first write
        // (content-neutral zeros, so committing them separately
        // before the txn cannot tear its atomicity).
        const u64 size_now =
            p.inode->fileSize.load(std::memory_order_acquire);
        if (p.writes.front()->offset > size_now) {
            std::vector<u8> zeros(p.writes.front()->offset - size_now,
                                  0);
            MGSP_RETURN_IF_ERROR(
                doWrite(p.inode, size_now,
                        ConstSlice(zeros.data(), zeros.size())));
        }
    }

    const u64 txn_id =
        nextTxnId_.fetch_add(1, std::memory_order_relaxed);
    stats::OpTrace trace(stats::OpType::Batch, txn_id, writes.size(),
                         statsOn_);

    // ---- resource claims (nothing durable yet) ------------------
    trace.stage(stats::Stage::Claim);
    StatusOr<u32> slot_or = txnClaimSlot();
    if (!slot_or.isOk()) {
        txnCounters_.aborts->add(1);
        trace.setFailed();
        return slot_or.status();
    }
    const u32 slot = *slot_or;
    std::vector<u32> claimed;
    auto rollbackClaims = [&] {
        for (u32 e : claimed)
            metaLog_->release(e);
        txnReleaseSlot(slot);
        txnCounters_.aborts->add(1);
        trace.setFailed();
    };
    for (auto &[idx, p] : parts) {
        (void)idx;
        for (Group &g : p.groups) {
            // Bounded claim retry; a MetaClaim fault plan failing or
            // stalling here rolls the whole txn back with nothing
            // durable — no half-prepared txn can survive recovery.
            StatusOr<u32> entry_or = claimEntryWithRetry();
            if (!entry_or.isOk()) {
                rollbackClaims();
                return entry_or.status();
            }
            g.entry = *entry_or;
            claimed.push_back(g.entry);
        }
    }

    // ---- stage every write into its file's shadow log -----------
    trace.stage(stats::Stage::Lock);
    const bool file_lock_mode =
        config_.lockMode == LockMode::FileLock;
    auto unlock_all = [&] {
        for (auto &[i, p] : parts) {
            (void)i;
            if (p.lockedFile)
                p.inode->fileLock.unlock();
            ShadowTree::releaseLocks(&p.locks);
        }
    };
    trace.stage(stats::Stage::DataWrite);
    for (auto &[idx, p] : parts) {
        (void)idx;
        if (file_lock_mode) {
            p.inode->fileLock.lock();
            p.lockedFile = true;
        }
        p.oldSize = p.inode->fileSize.load(std::memory_order_acquire);
        p.newSize = std::max(p.oldSize, p.batchEnd);
        for (Group &g : p.groups) {
            g.staged.inode = p.inode->inodeIdx;
            g.staged.length = static_cast<u32>(g.end - g.frontOff);
            g.staged.offset = g.frontOff;
            g.staged.newFileSize = p.newSize;
            for (const TxnWrite *w : g.writes) {
                Status s = p.inode->tree->performWrite(
                    w->offset,
                    ConstSlice(w->data.data(), w->data.size()),
                    &g.staged, &p.locks, file_lock_mode);
                if (!s.isOk()) {
                    // Staged shadow cells are unreferenced without a
                    // commit entry; leaked records are the same
                    // orphan shape a crash leaves, which recovery
                    // ignores.
                    unlock_all();
                    rollbackClaims();
                    return s;
                }
            }
        }
    }

    // ---- phase 1: prepare ---------------------------------------
    trace.stage(stats::Stage::CommitFence);
    device_->fence();  // every participant's shadow data durable
    for (auto &[idx, p] : parts) {
        (void)idx;
        for (Group &g : p.groups) {
            // The shared txn id rides in the checksummed offset field
            // (the epoch-id idiom); replay never consults the offset.
            g.staged.offset = txn_id;
            g.staged.flags = MetaLogEntry::kFlagTxnPrepare;
            metaLog_->commit(g.entry, g.staged, /*fenced=*/false);
        }
    }
    device_->fence();  // every prepare entry durable
    txnCounters_.prepares->add(total_groups);

    // ---- phase 2: the commit flip -------------------------------
    txnPublishRecord(slot, txn_id, total_groups);

    // ---- apply & complete ---------------------------------------
    trace.stage(stats::Stage::BitmapApply);
    for (auto &[idx, p] : parts) {
        (void)idx;
        for (Group &g : p.groups)
            p.inode->tree->applyStaged(g.staged);
        if (p.newSize != p.oldSize)
            persistFileSize(p.inode, p.newSize);
    }
    device_->fence();  // all applies durable before the record dies

    // Retire the commit record FIRST, then outdate the prepares: a
    // crash in between leaves live prepares with no record, which
    // recovery discards — harmless, the applies above are already
    // durable and identical to the replay. The other order would
    // leave a valid record with a partial prepare set, a legitimate
    // crash shape indistinguishable from media rot.
    txnRetireRecord(slot);
    for (u32 e : claimed)
        metaLog_->markOutdated(e);
    device_->fence();
    for (u32 e : claimed)
        metaLog_->release(e);
    txnReleaseSlot(slot);
    unlock_all();
    trace.endStage();

    // ---- post-commit bookkeeping (mirrors writeBatch) -----------
    for (auto &[idx, p] : parts) {
        (void)idx;
        const u64 claim_end =
            alignUp(p.batchEnd, config_.fineGrainSize());
        u64 frontier =
            p.inode->claimFrontier.load(std::memory_order_relaxed);
        while (frontier < claim_end &&
               !p.inode->claimFrontier.compare_exchange_weak(
                   frontier, claim_end, std::memory_order_acq_rel))
            ;
        for (const TxnWrite *w : p.writes) {
            logicalBytes_.fetch_add(w->data.size(),
                                    std::memory_order_relaxed);
            noteDirty(p.inode, w->offset, w->data.size(), trace.opId());
        }
    }
    txnCounters_.commits->add(1);
    return Status::ok();
}

Status
MgspFs::doRangeSync(OpenInode *inode, u64 offset, u64 len)
{
    // Engine-only gate: a fenced file may still sync what it already
    // acknowledged, but a read-only engine performs no commits.
    MGSP_RETURN_IF_ERROR(writeGate(nullptr));
    // msync rejects ranges outside the mapping; ours is the file's
    // capacity region (EINVAL through mgsp_msync).
    if (offset + len < offset || offset + len > inode->capacity)
        return Status::invalidArgument(
            "range sync beyond file capacity");
    if (len == 0)
        return Status::ok();
    // Epoch mode: acknowledged writes may still be volatile pending
    // overlays; the ranged barrier must commit the epoch. (The epoch
    // is global, so this makes slightly more than the range durable
    // — strictly stronger, never weaker.)
    if (epochOn_)
        return epochCommit();
    // Every other mode acknowledges writes only after their own
    // commit fence, so the range is already durable and atomic: one
    // fence orders this call against any in-flight store the caller
    // raced with. A degenerate single-file transaction — no prepare,
    // no record — per DESIGN.md §17.
    device_->fence();
    return Status::ok();
}

// --- epoch group sync & adaptive log policy (DESIGN.md §15) ----------

void
MgspFs::initEpochLog()
{
    if (!epochOn_)
        return;
    // The group commit addresses entries by fixed role — 0 = the
    // single-inode fast entry, 1 = the commit record, 2.. = data
    // entries — so claim() must never hand any of them out. Volatile
    // reservation: recovery's resetAll() clears owners each mount and
    // this runs right after.
    for (u32 i = 0; i < config_.metaLogEntries; ++i)
        metaLog_->reserve(i);
}

Status
MgspFs::doEpochChunk(OpenInode *inode, u64 offset, ConstSlice src)
{
    stats::OpTrace trace(stats::OpType::Write, offset, src.size(),
                         statsOn_);
    std::unique_lock<std::mutex> epoch_guard(inode->epochMutex);
    inode->tree->noteAccess(offset, /*is_write=*/true);

    // Append fast path: a write entirely beyond EOF and the claim
    // frontier goes straight into the home extent (flushed, no
    // fence); only the volatile size grows. The durable size
    // publication — the append's commit point — rides the epoch.
    // Readers racing the size bump synchronise through the acq_rel
    // CAS, so the bytes are visible before the size admits them.
    const u64 old_size = inode->fileSize.load(std::memory_order_acquire);
    if (offset >= old_size &&
        offset >= inode->claimFrontier.load(std::memory_order_acquire)) {
        trace.stage(stats::Stage::DataWrite);
        device_->write(inode->extentOff + offset, src.data(), src.size());
        device_->flush(inode->extentOff + offset, src.size());
        const u64 new_size = offset + src.size();
        u64 cur = inode->fileSize.load(std::memory_order_relaxed);
        while (cur < new_size &&
               !inode->fileSize.compare_exchange_weak(
                   cur, new_size, std::memory_order_acq_rel))
            ;
        inode->epochSizeDirty = true;
        registerEpochParticipant(inode);
        trace.orGranMask(stats::kGranInPlace);
        trace.endStage();
        epoch_guard.unlock();
        noteDirty(inode, offset, src.size(), trace.opId());
        return Status::ok();
    }

    trace.stage(stats::Stage::Lock);
    const bool file_lock_mode = config_.lockMode == LockMode::FileLock;
    std::vector<HeldLock> locks;
    if (file_lock_mode)
        inode->fileLock.lock();
    auto unlock_all = [&] {
        if (file_lock_mode)
            inode->fileLock.unlock();
        ShadowTree::releaseLocks(&locks);
    };

    trace.stage(stats::Stage::DataWrite);
    StagedMetadata staged;
    staged.inode = inode->inodeIdx;
    staged.length = static_cast<u32>(src.size());
    staged.offset = offset;
    const u64 new_size = std::max(old_size, offset + src.size());
    staged.newFileSize = new_size;

    Status s = inode->tree->performWrite(offset, src, &staged, &locks,
                                         file_lock_mode);
    if (!s.isOk()) {
        // The walk may have published pending overlays (staged
        // existing-bit flips) that will now never commit; restore
        // them to the accumulator's state before anyone trusts them.
        rollbackEpochOverlay(inode, staged);
        unlock_all();
        trace.setFailed();
        return s;
    }

    // No fence, no metadata-log entry: the write is acknowledged as
    // part of the current epoch. Readers see it through the pending
    // overlays; the committed words stay untouched until the group
    // commit, so a crash now simply never happened.
    trace.stage(stats::Stage::BitmapApply);
    inode->tree->applyStagedVolatile(staged);
    mergeEpochSlots(inode, staged);
    if (new_size != old_size) {
        u64 cur = inode->fileSize.load(std::memory_order_relaxed);
        while (cur < new_size &&
               !inode->fileSize.compare_exchange_weak(
                   cur, new_size, std::memory_order_acq_rel))
            ;
        inode->epochSizeDirty = true;
    }
    registerEpochParticipant(inode);
    unlock_all();
    trace.setSlots(staged.usedSlots);
    trace.orGranMask(staged.granMask);
    trace.endStage();

    const u64 claim_end =
        alignUp(offset + src.size(), config_.fineGrainSize());
    u64 frontier = inode->claimFrontier.load(std::memory_order_relaxed);
    while (frontier < claim_end &&
           !inode->claimFrontier.compare_exchange_weak(
               frontier, claim_end, std::memory_order_acq_rel))
        ;

    // Forced commits — never while holding the epoch mutex (the
    // commit locks every participant, including us):
    //  - a coarse-granularity op: a later op descending below the
    //    coarse node would make role decisions against a committed
    //    word the pending coarse flip is about to supersede;
    //  - the slot budget: bounds replay work and guarantees one
    //    participant's accumulator re-splits into a single chunk.
    const bool force_coarse = (staged.granMask & stats::kGranCoarse) != 0;
    const u64 total = epochSlotCount_.load(std::memory_order_relaxed);
    epoch_guard.unlock();
    noteDirty(inode, offset, src.size(), trace.opId());
    if (force_coarse || total >= epochBudget_) {
        epochCounters_.autoFlushes->add(1);
        return epochCommit();
    }
    return Status::ok();
}

void
MgspFs::mergeEpochSlots(OpenInode *inode, const StagedMetadata &staged)
{
    u64 added = 0;
    for (u32 i = 0; i < staged.usedSlots; ++i) {
        const u32 rec = staged.slots[i].recIdx;
        TreeNode *n = staged.nodes[i];
        // O(1) merge via the node's cached accumulator position (see
        // TreeNode::epochSlotPos). An entry's position never changes
        // — the accumulator is append-only until the commit clears it
        // — and each record appears at most once, so a position whose
        // recIdx matches IS the record's entry; a stale cache fails
        // the check and falls through to a fresh append.
        const u32 pos = n != nullptr ? n->epochSlotPos : 0xffffffffu;
        if (pos < inode->epochSlots.size() &&
            inode->epochSlots[pos].recIdx == rec) {
            // Newest op wins: replay stores absolute words.
            inode->epochSlots[pos].newBits = staged.slots[i].newBits;
            if (n != nullptr)
                inode->epochSlots[pos].node = n;
            continue;
        }
        if (n != nullptr)
            n->epochSlotPos =
                static_cast<u32>(inode->epochSlots.size());
        inode->epochSlots.push_back(
            {rec, staged.slots[i].newBits, n});
        ++added;
    }
    if (added != 0)
        epochSlotCount_.fetch_add(added, std::memory_order_relaxed);
}

void
MgspFs::rollbackEpochOverlay(OpenInode *inode,
                             const StagedMetadata &staged)
{
    // Same-inode writers are serialised by the epoch mutex (held) and
    // the commit locks it too, so no concurrent version writer exists
    // on these nodes.
    for (u32 i = 0; i < staged.usedSlots; ++i) {
        TreeNode *n = staged.nodes[i];
        if (n == nullptr)
            continue;
        u64 prior = 0;
        bool have = false;
        for (const auto &slot : inode->epochSlots) {
            if (slot.recIdx == staged.slots[i].recIdx) {
                prior = slot.newBits;
                have = true;
                break;
            }
        }
        n->version.writeBegin();
        if (have) {
            n->pendingBits.store(prior, std::memory_order_relaxed);
            n->hasPending.store(true, std::memory_order_release);
        } else {
            n->hasPending.store(false, std::memory_order_release);
        }
        n->version.writeEnd();
    }
}

void
MgspFs::registerEpochParticipant(OpenInode *inode)
{
    if (inode->epochRegistered)  // under the inode's epochMutex
        return;
    inode->epochRegistered = true;
    std::lock_guard<std::mutex> guard(epochRegMutex_);
    epochParticipants_.push_back(inode);
}

Status
MgspFs::epochCommit()
{
    if (!epochOn_)
        return Status::ok();
    std::lock_guard<std::mutex> commit_guard(epochCommitMutex_);

    // Snapshot-and-swap the roster: writers landing after the swap
    // re-register and join the next epoch. The scratch vector (guarded
    // by epochCommitMutex_) ping-pongs its capacity with the roster so
    // neither side re-allocates once warmed up.
    std::vector<OpenInode *> &parts = epochRosterScratch_;
    parts.clear();
    {
        std::lock_guard<std::mutex> reg_guard(epochRegMutex_);
        parts.swap(epochParticipants_);
    }
    if (parts.empty())
        return Status::ok();
    std::sort(parts.begin(), parts.end(),
              [](const OpenInode *a, const OpenInode *b) {
                  return a->inodeIdx < b->inodeIdx;
              });
    for (OpenInode *p : parts)
        p->epochMutex.lock();
    // Every participant's accumulator is frozen from here; in-flight
    // writers block at their epoch mutex and land in the next epoch.
    for (OpenInode *p : parts)
        p->epochRegistered = false;

    // Applies + accumulator teardown for one participant. Unfenced on
    // purpose: the participant's entry (or record group) is live, so
    // a crash replays the same absolute words; the next chunk's (or
    // epoch's) leading fence — or the finalize — makes them durable
    // before anything retires the entries.
    auto applyParticipant = [&](OpenInode *p) {
        for (const auto &slot : p->epochSlots) {
            nodeTable_->storeBitmap(slot.recIdx, slot.newBits);
            if (slot.node != nullptr) {
                // Value-identical hand-off (committed word := pending
                // word, table store first), so lock-free readers need
                // no version bump.
                slot.node->hasPending.store(false,
                                            std::memory_order_release);
            }
        }
        if (p->epochSizeDirty) {
            const u64 size = p->fileSize.load(std::memory_order_acquire);
            const u64 off = layout_.inodeOff(p->inodeIdx) +
                            offsetof(InodeRecord, fileSize);
            if (device_->load64(off) < size) {
                device_->store64(off, size);
                device_->flush(off, 8);
            }
        }
        epochCounters_.slotsFlushed->add(p->epochSlots.size());
        epochSlotCount_.fetch_sub(p->epochSlots.size(),
                                  std::memory_order_relaxed);
        p->epochSlots.clear();
        p->epochSizeDirty = false;
        epochCounters_.inodesCommitted->add(1);
    };

    u64 slot_total = 0;
    bool any_dirty = false;
    for (const OpenInode *p : parts) {
        slot_total += p->epochSlots.size();
        any_dirty = any_dirty || p->epochSizeDirty ||
                    !p->epochSlots.empty();
    }

    // Replay-soundness invariant: the live entries always belong to
    // exactly ONE epoch — the newest that published entries — and
    // every earlier epoch's applies were fence-durable before its
    // entries were retired or overwritten. Letting two epochs' worth
    // of entries coexist is the stale-replay trap: an old entry may
    // name a record whose newest word came from an intermediate epoch
    // whose own entry was since destroyed by index reuse, and
    // id-ordered replay would resurrect the stale word. Each shape
    // below either retires the previous epoch's live set up front or
    // destroys it wholesale by overwriting it.

    if (!any_dirty) {
        // Registered but nothing staged (e.g. a failed op rolled
        // back): nothing to publish.
    } else if (parts.size() == 1 && slot_total == 0) {
        // Size-only epoch (append fast paths): the durable size store
        // is itself atomic, so no log entry is needed — fence the
        // appended bytes, publish the size, fence the ack. The
        // previous epoch's entries stay live untouched: they are
        // still the newest entry-publishing epoch, so replaying them
        // plus this fenced size is exactly the post-sync state.
        OpenInode *p = parts.front();
        device_->fence();
        applyParticipant(p);
        device_->fence();
        epochCounters_.commits->add(1);
        epochCounters_.fastCommits->add(1);
    } else if (parts.size() == 1 &&
               slot_total <= MetaLogEntry::kMaxSlots) {
        // Single-inode fast shape: one self-contained entry at index
        // 0, overwritten in place each fast epoch. A torn overwrite
        // leaves a checksum-dead entry, and the previous epoch's
        // applies are already durable via the fence below. When entry
        // 0 is the whole live set, the overwrite IS the retirement;
        // only a leftover general-shape group needs outdating first.
        const bool live_is_entry0 =
            epochLiveIdx_.empty() ||
            (epochLiveIdx_.size() == 1 && epochLiveIdx_[0] == 0);
        if (!live_is_entry0)
            epochFinalizeLocked();
        OpenInode *p = parts.front();
        device_->fence();  // epoch data + prior applies durable
        StagedMetadata staged;
        staged.inode = p->inodeIdx;
        staged.flags = MetaLogEntry::kFlagEpochData |
                       MetaLogEntry::kFlagEpochCommit;
        staged.offset = epochId_++;
        staged.length = 1;
        staged.newFileSize = p->fileSize.load(std::memory_order_acquire);
        for (const auto &slot : p->epochSlots)
            staged.addSlot(slot.recIdx, static_cast<u32>(slot.newBits));
        metaLog_->commit(0, staged, /*fenced=*/true);  // COMMIT point
        epochEntriesDirty_ = true;
        epochLiveIdx_.assign(1, 0);
        applyParticipant(p);
        epochCounters_.commits->add(1);
        epochCounters_.fastCommits->add(1);
    } else {
        // General shape: re-split every dirty participant's
        // accumulator into <=kMaxSlots data entries and pack whole
        // participants into chunks of at most E-2 entries. Each chunk
        // commits as its own epoch id — the chunk is the atomicity
        // unit, and keeping a participant whole keeps every logical
        // op whole. The previous epoch's live set is retired up front
        // (a live fast entry at 0 is never overwritten here, and a
        // live record over mixed-epoch data would replay as rot).
        epochFinalizeLocked();
        struct PartEntries
        {
            OpenInode *part;
            std::vector<StagedMetadata> entries;
        };
        std::vector<PartEntries> pending;
        for (OpenInode *p : parts) {
            if (p->epochSlots.empty() && !p->epochSizeDirty)
                continue;
            PartEntries pe;
            pe.part = p;
            const u64 fsize = p->fileSize.load(std::memory_order_acquire);
            StagedMetadata e;
            auto reset_entry = [&] {
                e = StagedMetadata{};
                e.inode = p->inodeIdx;
                e.flags = MetaLogEntry::kFlagEpochData;
                e.length = 1;
                e.newFileSize = fsize;
            };
            reset_entry();
            for (const auto &slot : p->epochSlots) {
                if (e.usedSlots == MetaLogEntry::kMaxSlots) {
                    pe.entries.push_back(e);
                    reset_entry();
                }
                e.addSlot(slot.recIdx, static_cast<u32>(slot.newBits));
            }
            pe.entries.push_back(e);  // >=1, carries size-only epochs
            pending.push_back(std::move(pe));
        }

        const std::size_t cap = config_.metaLogEntries - 2;
        std::size_t next = 0;
        while (next < pending.size()) {
            std::size_t first = next;
            std::size_t entry_count = 0;
            while (next < pending.size() &&
                   entry_count + pending[next].entries.size() <= cap) {
                entry_count += pending[next].entries.size();
                ++next;
            }
            // The slot budget keeps one participant within cap.
            MGSP_CHECK(next > first &&
                       "one participant's entries outgrew the log");

            const u64 id = epochId_++;
            device_->fence();  // chunk data + prior applies durable
            if (epochRecordLive_) {
                // Kill the stale record before its data region is
                // reused: a live record over mixed-epoch data entries
                // would read as corruption at replay. Safe: the fence
                // above made that epoch's applies durable.
                metaLog_->markOutdated(1);
                device_->fence();
                epochRecordLive_ = false;
            }
            u32 entry_idx = 2;
            for (std::size_t i = first; i < next; ++i) {
                for (StagedMetadata e : pending[i].entries) {
                    e.offset = id;
                    if (std::find(epochLiveIdx_.begin(),
                                  epochLiveIdx_.end(),
                                  entry_idx) == epochLiveIdx_.end())
                        epochLiveIdx_.push_back(entry_idx);
                    metaLog_->commit(entry_idx++, e, /*fenced=*/false);
                }
            }
            device_->fence();  // full data set durable before the record
            StagedMetadata rec;
            rec.inode = pending[first].part->inodeIdx;
            rec.flags = MetaLogEntry::kFlagEpochCommit;
            rec.offset = id;
            rec.length = 1 + static_cast<u32>(entry_count);
            metaLog_->commit(1, rec, /*fenced=*/true);  // COMMIT point
            epochRecordLive_ = true;
            epochEntriesDirty_ = true;
            if (std::find(epochLiveIdx_.begin(), epochLiveIdx_.end(),
                          1u) == epochLiveIdx_.end())
                epochLiveIdx_.push_back(1);

            // This chunk's applies; the next chunk's leading fence
            // (which precedes the record kill) makes them durable
            // before the chunk's entries can be overwritten.
            for (std::size_t i = first; i < next; ++i)
                applyParticipant(pending[i].part);
        }
        epochCounters_.commits->add(1);
    }

    // Re-evaluate the per-subtree log policy now that the epoch is
    // durable and every overlay is gone. Writers of these inodes are
    // still blocked at their epoch mutex; the write-back takes the
    // same covering-W locks as the cleaner.
    Status result = Status::ok();
    for (OpenInode *p : parts) {
        Status ps = evaluatePolicyLocked(p);
        if (!ps.isOk() && result.isOk())
            result = ps;
    }

    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        (*it)->epochMutex.unlock();

    // With the cleaner on, retire eagerly: any pass may recycle
    // records/cells right after this commit, and the barrier it takes
    // becomes a cheap no-op.
    if (cleanerOn_)
        epochFinalizeLocked();
    return result;
}

Status
MgspFs::epochBarrier()
{
    if (!epochOn_)
        return Status::ok();
    Status s = epochCommit();
    std::lock_guard<std::mutex> guard(epochCommitMutex_);
    epochFinalizeLocked();
    return s;
}

void
MgspFs::epochFinalizeLocked()
{
    if (!epochEntriesDirty_)
        return;
    device_->fence();  // every unfenced apply durable before retirement
    // Ascending index order so the commit record (index 1) dies
    // before its data entries (2..): a crash mid-retirement then
    // leaves silently-discarded orphans, never a live record over a
    // partial data set (which replay would read as rot).
    std::sort(epochLiveIdx_.begin(), epochLiveIdx_.end());
    for (u32 idx : epochLiveIdx_)
        metaLog_->markOutdated(idx);
    device_->fence();  // entries dead before records/cells may recycle
    epochLiveIdx_.clear();
    epochEntriesDirty_ = false;
    epochRecordLive_ = false;
    epochCounters_.finalizes->add(1);
}

Status
MgspFs::evaluatePolicyLocked(OpenInode *inode)
{
    if (config_.policyMode == PolicyMode::ForceShadow)
        return Status::ok();
    // With every subtree on the shadow log and too little new traffic
    // to cross policyMinOps, no decision can change: skip the 64-way
    // counter sweep. Matters at fsync-every-1, where an epoch commits
    // per op. Skipping also skips the decay, so the deferred traffic
    // is still in the counters when the sweep eventually runs.
    if (config_.policyMode == PolicyMode::Adaptive &&
        inode->policyMask == 0 &&
        inode->tree->policyAccessDelta() < config_.policyMinOps)
        return Status::ok();
    inode->tree->resetPolicyAccessDelta();
    policyCounters_.evaluations->add(1);
    const u32 subtrees = inode->tree->policySubtrees();
    u64 new_mask = 0;
    if (config_.policyMode == PolicyMode::ForceWriteThrough) {
        new_mask = subtrees >= 64 ? ~0ull : ((1ull << subtrees) - 1);
    } else {
        for (u32 i = 0; i < subtrees; ++i) {
            u64 reads = 0, writes = 0;
            inode->tree->sampleAccessAndDecay(i, &reads, &writes);
            const u64 total = reads + writes;
            const bool was = (inode->policyMask >> i) & 1;
            bool now = was;
            if (total >= config_.policyMinOps)
                now = static_cast<double>(reads) >=
                      config_.policyReadRatio *
                          static_cast<double>(total);
            else if (was && total < config_.policyMinOps / 2)
                now = false;  // hysteresis: revert once traffic dies
            if (now)
                new_mask |= 1ull << i;
        }
    }
    const u64 turning_on = new_mask & ~inode->policyMask;
    const u64 turning_off = inode->policyMask & ~new_mask;
    if (turning_on != 0)
        policyCounters_.toWriteThrough->add(
            static_cast<u64>(__builtin_popcountll(turning_on)));
    if (turning_off != 0)
        policyCounters_.toShadow->add(
            static_cast<u64>(__builtin_popcountll(turning_off)));
    // The persistent flag goes durable BEFORE the first write-back,
    // reusing the degraded-flag machinery: a crash mid-switch finds
    // the flag and clears it at recovery, ending the window cleanly.
    if (new_mask != 0 && !inode->policyFlagOn)
        setPolicyFlag(inode, true);
    inode->policyMask = new_mask;

    // Eagerly write the write-through subtrees back. Crash safe
    // without a barrier: writeBackRange recycles nothing, so a stale
    // live epoch entry replaying over it merely resurrects bits that
    // point at bytes identical to what was just copied home.
    Status result = Status::ok();
    const u64 fsize = inode->fileSize.load(std::memory_order_acquire);
    for (u32 i = 0; i < subtrees && result.isOk(); ++i) {
        if (((new_mask >> i) & 1) == 0)
            continue;
        u64 start = 0, len = 0;
        inode->tree->policySubtreeRange(i, &start, &len);
        if (start >= fsize)
            continue;
        len = std::min(len, fsize - start);
        const u64 before =
            inode->tree->snapshotStats().writtenBackBytes;
        result = policyWriteBack(inode, start, len);
        policyCounters_.writeBackBytes->add(
            inode->tree->snapshotStats().writtenBackBytes - before);
    }
    if (new_mask == 0 && inode->policyFlagOn && result.isOk())
        setPolicyFlag(inode, false);
    return result;
}

void
MgspFs::setPolicyFlag(OpenInode *inode, bool on)
{
    const u64 flags_off = layout_.inodeOff(inode->inodeIdx) +
                          offsetof(InodeRecord, flags);
    const u64 flags = device_->load64(flags_off);
    const u64 want = on ? flags | InodeRecord::kPolicyWriteThrough
                        : flags & ~InodeRecord::kPolicyWriteThrough;
    if (want != flags) {
        device_->store64(flags_off, want);
        device_->flush(flags_off, 8);
        device_->fence();
    }
    inode->policyFlagOn = on;
}

Status
MgspFs::policyWriteBack(OpenInode *inode, u64 off, u64 len)
{
    if (off >= inode->capacity)
        return Status::ok();
    len = std::min(len, inode->capacity - off);
    if (len == 0)
        return Status::ok();
    if (config_.lockMode == LockMode::FileLock) {
        ExclusiveGuard guard(inode->fileLock);
        return inode->tree->writeBackRange(off, len);
    }
    // cleanOneRange's covering-W discipline: IW down the path, W on
    // the covering node, version bump for lock-free readers.
    TreeNode *covering = inode->tree->coveringNode(off, len);
    std::vector<TreeNode *> ancestors;
    for (TreeNode *n = covering->parent; n != nullptr; n = n->parent)
        ancestors.push_back(n);
    for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it)
        (*it)->lock.acquire(MglMode::IW);
    covering->lock.acquire(MglMode::W);
    covering->version.writeBegin();
    Status s = inode->tree->writeBackRange(off, len);
    covering->version.writeEnd();
    covering->lock.release(MglMode::W);
    for (TreeNode *n : ancestors)
        n->lock.release(MglMode::IW);
    return s;
}

// --- resource exhaustion & degraded mode (DESIGN.md §13) -------------

bool
MgspFs::isResourceExhaustion(const Status &s)
{
    // OutOfSpace reaching the retry loop can only mean pool /
    // node-table / inode-table exhaustion: capacity overruns are
    // rejected before any chunk is attempted. ResourceBusy is a
    // bounded-out metadata-log claim.
    return s.code() == StatusCode::OutOfSpace ||
           s.code() == StatusCode::ResourceBusy;
}

void
MgspFs::nudgeCleanerForSpace()
{
    if (!cleanerOn_)
        return;
    // Run a full drain synchronously — the retrying writer needs the
    // space now, not after the worker wakes — and kick the worker too
    // so reclaim keeps going once we stop retrying.
    Status drained = drainOpenFiles();
    if (!drained.isOk())
        MGSP_WARN("exhaustion drain failed: %s",
                  drained.toString().c_str());
    if (!cleanerWorkers_.empty()) {
        {
            std::lock_guard<std::mutex> guard(cleanerMutex_);
            cleanerKick_ = true;
        }
        cleanerCv_.notify_one();
    }
}

StatusOr<u32>
MgspFs::claimEntryWithRetry()
{
    StatusOr<u32> entry = metaLog_->claim(config_.metaClaimSweeps);
    if (entry.isOk())
        return entry;
    BoundedBackoff backoff(config_.resourceRetryAttempts,
                           config_.resourceRetryDeadlineNanos,
                           config_.backoffInitialNanos,
                           config_.backoffMaxNanos);
    resourceCounters_.allocFail->add(1);
    while (backoff.nextAttempt()) {
        resourceCounters_.allocRetry->add(1);
        nudgeCleanerForSpace();
        entry = metaLog_->claim(config_.metaClaimSweeps);
        if (entry.isOk())
            break;
        resourceCounters_.allocFail->add(1);
    }
    resourceCounters_.backoffNanos->add(backoff.pausedNanos());
    if (backoff.deadlineExceeded())
        watchdogTrip("metadata-log claim", backoff.elapsedNanos());
    return entry;
}

void
MgspFs::watchdogTrip(const char *what, u64 elapsed_nanos)
{
    resourceCounters_.watchdogTrips->add(1);
    MGSP_WARN("watchdog: %s ran %llu ms, past the %llu ms resource "
              "deadline",
              what,
              static_cast<unsigned long long>(elapsed_nanos / 1000000),
              static_cast<unsigned long long>(
                  config_.resourceRetryDeadlineNanos / 1000000));
    // A blown resource deadline is a liveness fault, not a media
    // fault: it degrades the engine (operators see it in health())
    // but fences no file — the op itself already failed over to the
    // degraded write path or returned to the caller.
    if (healthOn_)
        escalateEngine(HealthState::Degraded, "watchdog trip");
}

void
MgspFs::enterDegradedLocked(OpenInode *inode)
{
    if (inode->degraded.load(std::memory_order_acquire))
        return;
    // Persist the flag before the first non-atomic write lands, so
    // recovery always knows which files carry the weakened contract.
    const u64 flags_off = layout_.inodeOff(inode->inodeIdx) +
                          offsetof(InodeRecord, flags);
    device_->store64(flags_off,
                     device_->load64(flags_off) | InodeRecord::kDegraded);
    device_->flush(flags_off, 8);
    device_->fence();
    inode->degraded.store(true, std::memory_order_release);
    // Readers bypass the cache while degraded (doRead checks the
    // flag), but frames filled before the flip must go too: degraded
    // writes bump covering versions under MGL, yet belt-and-braces
    // beats reasoning about every raw write-through interleaving.
    if (cache_ != nullptr)
        cache_->dropFile(inode->inodeIdx);
    resourceCounters_.degradedEnter->add(1);
    MGSP_WARN("%s: shadow resources exhausted past the retry budget; "
              "entering degraded write-through mode",
              inode->path.c_str());
}

void
MgspFs::exitDegradedLocked(OpenInode *inode)
{
    if (!inode->degraded.load(std::memory_order_acquire))
        return;
    if (poolBelowWatermark())
        return;  // still under pressure; stay degraded
    const u64 flags_off = layout_.inodeOff(inode->inodeIdx) +
                          offsetof(InodeRecord, flags);
    device_->store64(flags_off,
                     device_->load64(flags_off) & ~InodeRecord::kDegraded);
    device_->flush(flags_off, 8);
    device_->fence();
    inode->degraded.store(false, std::memory_order_release);
    resourceCounters_.degradedExit->add(1);
    MGSP_INFO("%s: pool recovered; restoring shadow-logged writes",
              inode->path.c_str());
}

void
MgspFs::maybeExitDegraded(OpenInode *inode)
{
    if (!inode->degraded.load(std::memory_order_acquire) ||
        poolBelowWatermark())
        return;
    std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
    exitDegradedLocked(inode);
}

Status
MgspFs::doDegradedWrite(OpenInode *inode, u64 offset, ConstSlice src)
{
    // Epoch mode: the degraded path's writeBackRange assumes no
    // pending overlays and no live epoch entries over its range.
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochBarrier());
    stats::OpTrace trace(stats::OpType::Write, offset, src.size(),
                         statsOn_);
    {
        // Exclude cleaner passes and truncate for the whole degraded
        // operation (lock order: cleanMutex, then fileLock / MGL —
        // same as drainInode).
        std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
        enterDegradedLocked(inode);
        Status s;
        if (config_.lockMode == LockMode::FileLock ||
            !config_.enableShadowLog) {
            ExclusiveGuard guard(inode->fileLock);
            s = degradedWriteLocked(inode, offset, src, &trace);
        } else {
            // Full MGL discipline, as in cleanOneRange: IW down the
            // path, W on the covering node, version bump so lock-free
            // readers retry instead of reading a torn range.
            TreeNode *covering =
                inode->tree->coveringNode(offset, src.size());
            std::vector<TreeNode *> ancestors;
            for (TreeNode *n = covering->parent; n != nullptr;
                 n = n->parent)
                ancestors.push_back(n);
            for (auto it = ancestors.rbegin(); it != ancestors.rend();
                 ++it)
                (*it)->lock.acquire(MglMode::IW);
            covering->lock.acquire(MglMode::W);
            covering->version.writeBegin();
            s = degradedWriteLocked(inode, offset, src, &trace);
            covering->version.writeEnd();
            covering->lock.release(MglMode::W);
            for (TreeNode *n : ancestors)
                n->lock.release(MglMode::IW);
        }
        if (!s.isOk()) {
            trace.setFailed();
            return s;
        }
        trace.orGranMask(stats::kGranInPlace);
        trace.endStage();
    }
    // Pool pressure persists while degraded; keep the cleaner moving
    // so the file can return to shadow-logged mode. Must not hold
    // cleanMutex here: a drain re-takes it.
    if (poolBelowWatermark())
        nudgeCleanerForSpace();
    return Status::ok();
}

Status
MgspFs::degradedWriteLocked(OpenInode *inode, u64 offset, ConstSlice src,
                            stats::OpTrace *trace)
{
    // Clear any shadow-log claims covering the range first so the
    // base extent is authoritative for it — a reader consulting a
    // stale claim would otherwise miss the new bytes.
    trace->stage(stats::Stage::WriteBack);
    MGSP_RETURN_IF_ERROR(inode->tree->writeBackRange(offset, src.size()));
    device_->fence();  // claims dead before the new bytes land

    // Durable but NOT operation-atomic: a crash mid-write tears at
    // store granularity, exactly like the ext4-DAX baseline. The
    // contract for bytes acked from here on is old-or-new per byte
    // until recovery clears the degraded flag (DESIGN.md §13).
    trace->stage(stats::Stage::DataWrite);
    device_->write(inode->extentOff + offset, src.data(), src.size());
    device_->flush(inode->extentOff + offset, src.size());
    trace->stage(stats::Stage::CommitFence);
    device_->fence();  // data durable before the size (and the ack)
    if (offset + src.size() >
        inode->fileSize.load(std::memory_order_acquire)) {
        persistFileSize(inode, offset + src.size());
        device_->fence();
    }
    resourceCounters_.degradedBytes->add(src.size());
    return Status::ok();
}

// --- health fencing & online repair (DESIGN.md §18) ------------------

Status
MgspFs::writeGate(const OpenInode *inode) const
{
    // Unconditional (not healthOn_-gated): the engine defaults
    // Healthy and inodes default Live, so the healthy path costs two
    // uncontended atomic loads — and persistent fence/condemn state
    // found by a mount is honoured even when fencing is off for this
    // instance.
    const HealthState engine = healthReg_.engineState();
    if (engine == HealthState::FailStop)
        return Status::ioError("engine is in fail-stop");
    if (engine == HealthState::ReadOnly)
        return Status::readOnlyFs("engine is read-only");
    if (inode == nullptr)
        return Status::ok();
    switch (inodeHealth(inode)) {
    case FileHealthState::Live:
        return Status::ok();
    case FileHealthState::Condemned:
        return Status::readOnlyFs("file is condemned after repeated "
                                  "failed repairs");
    default:
        return Status::readOnlyFs("file is fenced for repair");
    }
}

void
MgspFs::noteInodeFault(OpenInode *inode, u32 weight, const char *what)
{
    if (!healthOn_ || weight == 0)
        return;
    healthCounters_.faultsRecorded->add(weight);
    if (inodeHealth(inode) != FileHealthState::Live)
        return;  // already fenced; the repair worker owns it now
    // recordFault reports the budget crossing exactly once, so
    // concurrent reporters cannot double-fence.
    if (healthReg_.recordFault(inode->inodeIdx, weight))
        fenceInode(inode, what);
}

void
MgspFs::fenceInode(OpenInode *inode, const char *why)
{
    {
        std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
        if (inodeHealth(inode) != FileHealthState::Live)
            return;  // racing reporter fenced first
        // Same persistence protocol as the degraded flag: the bit is
        // durable before the volatile flip publishes it, so a crash
        // can never observe a fenced-in-DRAM file that mounts Live.
        const u64 flags_off = layout_.inodeOff(inode->inodeIdx) +
                              offsetof(InodeRecord, flags);
        device_->store64(flags_off, device_->load64(flags_off) |
                                        InodeRecord::kFenced);
        device_->flush(flags_off, 8);
        device_->fence();
        inode->health.store(static_cast<u8>(FileHealthState::Fenced),
                            std::memory_order_release);
        // Cached frames may predate the fault; every fenced read must
        // go through the tree paths and the CRC proof.
        if (cache_ != nullptr)
            cache_->dropFile(inode->inodeIdx);
        healthCounters_.inodeFences->add(1);
        MGSP_WARN("%s: fault budget exhausted (%s); fencing for "
                  "online repair",
                  inode->path.c_str(), why);
    }
    // Outside cleanMutex: escalation may take tableMutex_, and the
    // enqueue takes cleanerMutex_.
    escalateEngine(HealthState::Degraded, why);
    enqueueRepair(inode);
}

void
MgspFs::enqueueRepair(OpenInode *inode)
{
    // The pin keeps remove() off the inode while it sits in the
    // queue; dropped by processRepairQueue (or stopCleaner's drain).
    inode->cleanerPins.fetch_add(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> guard(cleanerMutex_);
        repairQueue_.push_back(inode);
        cleanerKick_ = true;
    }
    cleanerCv_.notify_one();
}

void
MgspFs::processRepairQueue()
{
    for (;;) {
        OpenInode *inode = nullptr;
        {
            std::lock_guard<std::mutex> guard(cleanerMutex_);
            if (cleanerStop_ || repairQueue_.empty())
                return;  // leftovers drain in stopCleaner
            inode = repairQueue_.front();
            repairQueue_.erase(repairQueue_.begin());
        }
        Status s = repairInode(inode);
        if (!s.isOk())
            MGSP_WARN("online repair of %s failed: %s",
                      inode->path.c_str(), s.toString().c_str());
        inode->cleanerPins.fetch_sub(1, std::memory_order_acq_rel);
    }
}

Status
MgspFs::repairInode(OpenInode *inode)
{
    if (inodeHealth(inode) == FileHealthState::Live ||
        inodeHealth(inode) == FileHealthState::Condemned)
        return Status::ok();  // raced with another repair / verdict
    // A read-only engine performs no commits; the file stays fenced
    // (reads still flow through the verified path) until the operator
    // remounts writable.
    if (healthReg_.engineState() >= HealthState::ReadOnly)
        return Status::readOnlyFs("repair deferred: engine read-only");
    // Pending epoch overlays must be committed before the repair
    // write-back walks the tree (same ordering as releaseHandle and
    // the truncate shrink path: barrier BEFORE cleanMutex).
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochBarrier());

    bool healed = false;
    bool retry = false;
    bool condemned_now = false;
    Status verdict = Status::ok();
    {
        std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
        if (inodeHealth(inode) != FileHealthState::Fenced)
            return Status::ok();
        inode->health.store(static_cast<u8>(FileHealthState::Repairing),
                            std::memory_order_release);
        {
            // The full write-back supersedes the queue, as on close.
            std::lock_guard<std::mutex> dirty_guard(inode->dirtyMutex);
            inode->dirtyRanges.clear();
        }

        // One repair attempt: write every log back to the base extent
        // under policyWriteBack's covering-W discipline — copyHome
        // applies the salvage rules itself (a rotten or poisoned unit
        // is skipped and the base keeps the last committed bytes; the
        // skip probe advances transient-poison heal progress) — then
        // prove the base extent intact. Readers stay live throughout:
        // writes are EROFS-refused while fenced, so the write-back
        // races only the (covering-W-excluded or seqlock-retrying)
        // read paths, and writeBackRange recycles no TreeNodes.
        // Never writeBackAll here: it frees the volatile subtree,
        // which is only legal on the close path's exclusive access —
        // a racing locked reader would traverse freed nodes.
        Status s = policyWriteBack(inode, 0, inode->capacity);
        if (s.isOk()) {
            device_->fence();
            const u64 vlen =
                std::min(inode->fileSize.load(std::memory_order_acquire),
                         inode->capacity);
            // hitPoison, not poisoned(): the failed probe is itself a
            // retraining read, so repeated attempts ride out transient
            // episodes while permanent rot still fails every attempt
            // and drives condemnation.
            if (vlen != 0 && device_->hitPoison(inode->extentOff, vlen))
                s = Status::mediaError(
                    "base extent still carries unrecovered media "
                    "errors");
        }

        const u64 flags_off = layout_.inodeOff(inode->inodeIdx) +
                              offsetof(InodeRecord, flags);
        if (s.isOk()) {
            // Durably unfence before the volatile flip, mirroring the
            // fence protocol: a crash right here re-verifies the (now
            // clean) extent at mount and comes up Live either way.
            device_->store64(flags_off, device_->load64(flags_off) &
                                            ~InodeRecord::kFenced);
            device_->flush(flags_off, 8);
            device_->fence();
            healthReg_.resetFaults(inode->inodeIdx);
            inode->repairAttempts = 0;
            inode->health.store(static_cast<u8>(FileHealthState::Live),
                                std::memory_order_release);
            healthCounters_.inodeUnfences->add(1);
            healthCounters_.repairsOk->add(1);
            MGSP_INFO("%s: online repair converged; unfenced",
                      inode->path.c_str());
            healed = true;
        } else {
            ++inode->repairAttempts;
            healthCounters_.repairsFailed->add(1);
            if (inode->repairAttempts >= config_.repairMaxAttempts) {
                device_->store64(flags_off,
                                 (device_->load64(flags_off) &
                                  ~InodeRecord::kFenced) |
                                     InodeRecord::kCondemned);
                device_->flush(flags_off, 8);
                device_->fence();
                inode->health.store(
                    static_cast<u8>(FileHealthState::Condemned),
                    std::memory_order_release);
                healthCounters_.condemned->add(1);
                MGSP_WARN("%s: condemned after %u failed repairs: %s",
                          inode->path.c_str(), inode->repairAttempts,
                          s.toString().c_str());
                condemned_now = true;
                verdict = s;
            } else {
                inode->health.store(
                    static_cast<u8>(FileHealthState::Fenced),
                    std::memory_order_release);
                retry = true;
            }
        }
    }
    if (condemned_now) {
        // Escalated OUTSIDE cleanMutex: the ReadOnly persist takes
        // tableMutex_, which is ordered before cleanMutex everywhere.
        // A condemned file means online repair could not win against
        // the media; the whole engine stops trusting it with writes,
        // and the persistent flag tells the next mount it is entering
        // a crime scene.
        escalateEngine(HealthState::ReadOnly,
                       "a file was condemned after repeated failed "
                       "online repairs");
        return verdict;
    }
    // cleanMutex released: re-queueing takes cleanerMutex_ and the
    // heal scan takes tableMutex_ (ordered before cleanMutex).
    if (retry) {
        enqueueRepair(inode);
        return Status::ok();
    }
    // Last fence healed? Scan AFTER releasing cleanMutex — the
    // engine-wide order is tableMutex_ before cleanMutex, never the
    // reverse.
    bool all_live = true;
    {
        std::lock_guard<std::mutex> guard(tableMutex_);
        for (const auto &[path, open] : openInodes_) {
            const FileHealthState h = inodeHealth(open.get());
            if (h != FileHealthState::Live &&
                h != FileHealthState::Condemned) {
                all_live = false;
                break;
            }
        }
    }
    if (healed && all_live && healthReg_.healEngine())
        MGSP_INFO("all fenced files healed; engine back to healthy");
    return Status::ok();
}

Status
MgspFs::repairNow()
{
    processRepairQueue();
    return Status::ok();
}

void
MgspFs::escalateEngine(HealthState target, const char *why)
{
    if (!healthReg_.raiseEngine(target))
        return;  // already there or worse
    if (target == HealthState::Degraded) {
        healthCounters_.engineDegraded->add(1);
        MGSP_WARN("engine health degraded: %s", why);
        return;
    }
    healthCounters_.engineReadOnly->add(1);
    MGSP_WARN("engine is now %s: %s",
              target == HealthState::FailStop ? "fail-stop"
                                              : "read-only",
              why);
    // Persist the verdict so the next mount starts read-only instead
    // of re-discovering the rot. Never auto-cleared. Skipped when the
    // superblock itself is what rotted (sbWritable_ false) — the next
    // mount re-detects the dual-copy loss directly.
    if (target >= HealthState::ReadOnly && sbWritable_) {
        std::lock_guard<std::mutex> guard(tableMutex_);
        if (!(sb_.healthFlags & Superblock::kHealthReadOnly)) {
            sb_.healthFlags |= Superblock::kHealthReadOnly;
            persistSuperblock();
        }
    }
}

HealthState
MgspFs::health() const
{
    return healthReg_.engineState();
}

void
MgspFs::onHealthChange(std::function<void(HealthState)> cb)
{
    healthReg_.setCallback(std::move(cb));
}

void
MgspFs::setResourceFaultPlan(const ResourceFaultPlan &plan)
{
    if (plan.empty()) {
        pool_->setResourceFaultInjector(nullptr);
        nodeTable_->setResourceFaultInjector(nullptr);
        metaLog_->setResourceFaultInjector(nullptr);
        resourceInjector_.reset();
        return;
    }
    resourceInjector_ = std::make_unique<ResourceFaultInjector>(plan);
    pool_->setResourceFaultInjector(resourceInjector_.get());
    nodeTable_->setResourceFaultInjector(resourceInjector_.get());
    metaLog_->setResourceFaultInjector(resourceInjector_.get());
}

ResourceFaultStats
MgspFs::resourceFaultStats() const
{
    return resourceInjector_ != nullptr ? resourceInjector_->stats()
                                        : ResourceFaultStats{};
}

Status
MgspFs::doTruncate(OpenInode *inode, u64 new_size)
{
    MGSP_RETURN_IF_ERROR(writeGate(inode));
    if (new_size > inode->capacity)
        return Status::outOfSpace("truncate beyond capacity");
    // Epoch mode: commit + retire before the shrink path recycles
    // claims a live epoch entry may still name (and so the pending
    // overlays are gone before writeBackRange walks the tree).
    if (epochOn_)
        MGSP_RETURN_IF_ERROR(epochBarrier());
    stats::OpTrace trace(stats::OpType::Truncate, 0, new_size, statsOn_);
    trace.stage(stats::Stage::WriteBack);
    // The shrink path's writeBackRange assumes covering exclusivity;
    // exclude an in-flight cleaner pass (lock order: cleanMutex, then
    // fileLock — same as drainInode).
    std::lock_guard<std::mutex> clean_guard(inode->cleanMutex);
    ExclusiveGuard guard(inode->fileLock);
    const u64 old_size = inode->fileSize.load(std::memory_order_acquire);
    if (new_size < old_size) {
        // Clear the dropped range's shadow-log claims. The stale home
        // bytes beyond the new EOF are never readable: reads clamp to
        // the file size and every later extension (write-gap zeroing
        // or truncate-grow below) rewrites the range first — the
        // moral equivalent of ext4's unwritten extents.
        MGSP_RETURN_IF_ERROR(
            inode->tree->writeBackRange(new_size, old_size - new_size));
        device_->fill(inode->extentOff + new_size, 0,
                      std::min<u64>(old_size - new_size, 64 * KiB));
        inode->claimFrontier.store(
            alignUp(new_size, config_.fineGrainSize()),
            std::memory_order_release);
    } else if (new_size > old_size) {
        // Growing truncate: the exposed range must read as zeros.
        device_->fill(inode->extentOff + old_size, 0,
                      new_size - old_size);
        device_->flush(inode->extentOff + old_size, new_size - old_size);
        device_->fence();
    }
    persistFileSize(inode, new_size, /*allow_shrink=*/true);
    device_->fence();
    // No version signal distinguishes "shrunk then re-grown as
    // zeros" from the pre-truncate bytes, so cached frames must go;
    // the generation bump also discards any fill that raced us.
    if (cache_ != nullptr)
        cache_->dropFile(inode->inodeIdx);
    return Status::ok();
}

CacheStats
MgspFs::cacheStats() const
{
    return cache_ != nullptr ? cache_->statsSnapshot() : CacheStats{};
}

Status
MgspFs::dropCaches()
{
    if (cache_ != nullptr)
        cache_->dropAll();
    return Status::ok();
}

}  // namespace mgsp
