#include "mgsp/metadata_log.h"

#include <atomic>
#include <cstring>

#include "common/checksum.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/spin_lock.h"

namespace mgsp {
namespace {

/** Distinct nonzero tag per thread for entry ownership. */
u64
threadTag()
{
    static std::atomic<u64> counter{1};
    thread_local u64 tag = counter.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

}  // namespace

MetadataLog::MetadataLog(PmemDevice *device, const ArenaLayout &layout,
                         u32 entries, bool partial_flush)
    : device_(device), layout_(layout), entries_(entries),
      partialFlush_(partial_flush)
{
}

StatusOr<u32>
MetadataLog::claim(u32 max_sweeps)
{
    if (injector_ != nullptr &&
        injector_->onCall(ResourceSite::MetaClaim))
        return Status::resourceBusy("injected metadata-log claim fault");
    const u64 tag = threadTag();
    const u32 start = static_cast<u32>(mixHash64(tag) % entries_);
    for (u32 sweep = 0; sweep < max_sweeps; ++sweep) {
        for (u32 probe = 0; probe < entries_; ++probe) {
            const u32 idx = (start + probe) % entries_;
            u64 expected = 0;
            if (device_->cas64(entryOff(idx), expected, tag))
                return idx;
        }
        cpuRelax();
    }
    return Status::resourceBusy("metadata log entries exhausted");
}

u32
MetadataLog::computeChecksum(const MetaLogEntry &entry)
{
    // Covers [8, 40 + 8*usedSlots) with the checksum field zeroed.
    MetaLogEntry copy = entry;
    copy.checksum = 0;
    const auto *bytes = reinterpret_cast<const u8 *>(&copy);
    const std::size_t end = 40 + 8ull * entry.usedSlots;
    return crc32c(bytes + 8, end - 8);
}

void
MetadataLog::reserve(u32 idx)
{
    // Any nonzero owner defeats claim()'s CAS-from-zero. Volatile on
    // purpose: recovery's resetAll() clears owners at mount, and the
    // epoch region is re-reserved right after.
    device_->store64(entryOff(idx), ~0ull);
}

void
MetadataLog::commit(u32 idx, const StagedMetadata &staged, bool fenced)
{
    MGSP_CHECK(staged.usedSlots <= MetaLogEntry::kMaxSlots);
    MGSP_CHECK(staged.length != 0 &&
               "a zero length would mark the entry outdated");
    MetaLogEntry entry;
    std::memset(&entry, 0, sizeof(entry));
    entry.length = staged.length;
    entry.inode = staged.inode;
    entry.offset = staged.offset;
    entry.newFileSize = staged.newFileSize;
    entry.usedSlots = static_cast<u16>(staged.usedSlots);
    entry.flags = staged.flags;
    std::memcpy(entry.slots, staged.slots,
                sizeof(MetaLogEntry::Slot) * staged.usedSlots);
    entry.checksum = computeChecksum(entry);

    const u64 off = entryOff(idx);
    const auto *bytes = reinterpret_cast<const u8 *>(&entry);
    // The owner word at +0 stays as claimed; publish the rest.
    const u64 body = 40 + 8ull * staged.usedSlots;
    device_->write(off + 8, bytes + 8, body - 8);
    const u64 flush_len =
        (partialFlush_ && staged.usedSlots <= 3) ? 64 : sizeof(entry);
    device_->flush(off, flush_len);
    if (fenced)
        device_->fence();
}

void
MetadataLog::markOutdated(u32 idx)
{
    // length and inode share the u64 at +8; zeroing both is fine
    // (the entry is dead either way).
    device_->store64(entryOff(idx) + 8, 0);
    device_->flush(entryOff(idx) + 8, 8);
}

void
MetadataLog::release(u32 idx)
{
    device_->store64(entryOff(idx), 0);
}

std::vector<MetadataLog::LiveEntry>
MetadataLog::scanLive() const
{
    std::vector<LiveEntry> live;
    for (u32 idx = 0; idx < entries_; ++idx) {
        MetaLogEntry entry;
        device_->read(entryOff(idx), &entry, sizeof(entry));
        if (entry.length != 0 && entry.usedSlots <= MetaLogEntry::kMaxSlots &&
            entry.checksum == computeChecksum(entry)) {
            live.push_back(LiveEntry{idx, entry});
        }
    }
    return live;
}

void
MetadataLog::resetAll()
{
    for (u32 idx = 0; idx < entries_; ++idx) {
        device_->store64(entryOff(idx), 0);
        device_->store64(entryOff(idx) + 8, 0);
        device_->flush(entryOff(idx), 16);
    }
    device_->fence();
}

}  // namespace mgsp
