/**
 * @file
 * Multiple-granularity locking (MGL) for radix-tree nodes.
 *
 * Implements the Gray et al. intention-lock protocol the paper adopts
 * (Table I): a writer holds IW on every ancestor of the nodes it
 * W-locks; a reader holds IR on ancestors of its R-locked nodes.
 * Compatibility:
 *
 *        IR   IW   R    W
 *   IR   ok   ok   ok   --
 *   IW   ok   ok   --   --
 *   R    ok   --   ok   --
 *   W    --   --   --   --
 *
 * The lock word packs four fields into one atomic u64, so every
 * acquisition is a single CAS on an uncontended node. Acquisition
 * order (top-down, siblings by ascending offset) is enforced by the
 * traversal code, which makes the protocol deadlock-free.
 */
#ifndef MGSP_MGSP_MG_LOCK_H
#define MGSP_MGSP_MG_LOCK_H

#include <atomic>

#include "common/spin_lock.h"
#include "common/types.h"

namespace mgsp {

/** Lock modes of the MGL protocol. */
enum class MglMode : u8 { IR, IW, R, W };

/** Per-node MGL lock word. */
class MglLock
{
  public:
    MglLock() = default;
    MglLock(const MglLock &) = delete;
    MglLock &operator=(const MglLock &) = delete;

    /** Blocks until @p mode is acquired. */
    void
    acquire(MglMode mode)
    {
        SpinBackoff backoff;
        for (;;) {
            u64 s = state_.load(std::memory_order_relaxed);
            if (compatible(s, mode)) {
                if (state_.compare_exchange_weak(
                        s, s + increment(mode), std::memory_order_acquire,
                        std::memory_order_relaxed))
                    return;
            } else {
                backoff.pause();
            }
        }
    }

    /** Single non-blocking attempt. */
    bool
    tryAcquire(MglMode mode)
    {
        u64 s = state_.load(std::memory_order_relaxed);
        return compatible(s, mode) &&
               state_.compare_exchange_strong(s, s + increment(mode),
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
    }

    /** Releases a previously acquired @p mode. */
    void
    release(MglMode mode)
    {
        state_.fetch_sub(increment(mode), std::memory_order_release);
    }

    /** @return true iff no lock of any mode is held (testing). */
    bool
    idle() const
    {
        return state_.load(std::memory_order_relaxed) == 0;
    }

  private:
    // Field layout: readers 0..15, IW 16..31, IR 32..47, writers 48..63.
    static constexpr u64 kReader = 1ull << 0;
    static constexpr u64 kIw = 1ull << 16;
    static constexpr u64 kIr = 1ull << 32;
    static constexpr u64 kWriter = 1ull << 48;
    static constexpr u64 kFieldMask = 0xFFFF;

    static u64
    increment(MglMode mode)
    {
        switch (mode) {
          case MglMode::IR: return kIr;
          case MglMode::IW: return kIw;
          case MglMode::R: return kReader;
          case MglMode::W: return kWriter;
        }
        return 0;
    }

    static bool
    compatible(u64 s, MglMode mode)
    {
        const u64 readers = s & kFieldMask;
        const u64 iw = (s >> 16) & kFieldMask;
        const u64 ir = (s >> 32) & kFieldMask;
        const u64 writers = (s >> 48) & kFieldMask;
        switch (mode) {
          case MglMode::IR:
            return writers == 0;
          case MglMode::IW:
            return writers == 0 && readers == 0;
          case MglMode::R:
            return writers == 0 && iw == 0;
          case MglMode::W:
            return writers == 0 && readers == 0 && iw == 0 && ir == 0;
        }
        return false;
    }

    std::atomic<u64> state_{0};
};

/**
 * A writer-advanced version counter with seqlock discipline, one per
 * tree node, validating the optimistic (lock-free) read path.
 *
 * Writers bump the counter to an odd value before mutating the state
 * it covers (bitmap word, log pointer, log data) and back to even
 * after, always while holding a lock that serialises mutators of the
 * node (the node's W lock or its transition SpinLock), so bumps never
 * race each other. Readers snapshot, copy, and re-validate: any odd
 * snapshot or begin/end mismatch means a writer interleaved and the
 * copy must be discarded.
 *
 * Memory ordering follows the kernel seqcount pattern: a release
 * fence *after* the begin-bump orders it before the writer's
 * mutations, and one *before* the end-bump orders the mutations
 * before it; readers pair these with acquire fences.
 */
class SeqVersion
{
  public:
    SeqVersion() = default;
    SeqVersion(const SeqVersion &) = delete;
    SeqVersion &operator=(const SeqVersion &) = delete;

    /** Enters the writer critical section (version becomes odd). */
    void
    writeBegin()
    {
        version_.store(version_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
    }

    /** Leaves the writer critical section (version becomes even). */
    void
    writeEnd()
    {
        std::atomic_thread_fence(std::memory_order_release);
        version_.store(version_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    }

    /** Reader snapshot; odd means a writer is mid-flight. */
    u64
    readBegin() const
    {
        const u64 v = version_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_acquire);
        return v;
    }

    static bool isWriteActive(u64 snapshot) { return (snapshot & 1) != 0; }

    /**
     * True iff no writer entered since @p snapshot was taken. The
     * caller issues one atomic_thread_fence(acquire) after its last
     * data read and before validating its snapshots.
     */
    bool
    matches(u64 snapshot) const
    {
        return version_.load(std::memory_order_relaxed) == snapshot;
    }

  private:
    std::atomic<u64> version_{0};
};

}  // namespace mgsp

#endif  // MGSP_MGSP_MG_LOCK_H
