/**
 * @file
 * DRAM hot-extent read cache fronting the shadow tree (DESIGN.md
 * §16).
 *
 * A fixed-budget pool of DRAM frames, one leaf-block-sized extent
 * each, keyed by (inode, fine-extent index). Every frame carries a
 * ucache-style `PageState` word — an 8-bit lock state and a 56-bit
 * version packed into one std::atomic<u64> — so readers perform
 * optimistic, version-validated copies with no locks, and eviction
 * can never hand a reader freed or recycled bytes: any writer to the
 * frame (fill, evict, invalidate) holds the state at Locked and bumps
 * the version on release, which fails the reader's post-copy
 * revalidation.
 *
 * Coherence with the shadow tree needs no write-path hooks at all: a
 * frame stores the (TreeNode, seqlock version) set the filling read
 * consulted (ShadowTree::VersionSnapshot), and every hit revalidates
 * those versions. Writers already bump the versions of every node
 * they mutate for the optimistic read path, so a write anywhere under
 * a cached extent turns the next hit into a miss and the frame is
 * lazily reclaimed. Explicit drops exist only for the cases with no
 * version signal: file removal, truncate, degraded mode entry,
 * health fencing (DESIGN.md §18 — a fenced file's reads bypass the
 * cache entirely and its frames are dropped at fence time, so a
 * frame filled before the fault can never mask the CRC-verified
 * read path) and FileSystem::dropCaches().
 *
 * The key->frame index is one open-addressed table of atomic
 * {key, frame} slot pairs sized to at most 50% live load. Readers
 * probe it with plain atomic loads and no lock at all — a stale or
 * mid-mutation view can only produce a spurious miss, never a wrong
 * hit, because the frame's own key and PageState recheck rejects any
 * mismatch after the copy. Mutators (fill publish, evict, invalidate,
 * drops) serialize on a single spin lock; steady-state hit traffic
 * never touches it.
 *
 * Thread safety: all public methods are safe for any mix of callers.
 * Lock ordering: a frame lock may be taken before the index lock,
 * never the reverse (index critical sections never acquire frames).
 */
#ifndef MGSP_MGSP_PAGE_CACHE_H
#define MGSP_MGSP_PAGE_CACHE_H

#include <atomic>
#include <memory>

#include "common/spin_lock.h"
#include "common/stats.h"
#include "common/types.h"
#include "mgsp/shadow_tree.h"
#include "vfs/vfs.h"

namespace mgsp {

class PageCache
{
  public:
    /**
     * @param budget_bytes  total DRAM for frame data; 0 disables.
     * @param frame_size    bytes per frame (the engine's
     *                      leafBlockSize, so one frame spans exactly
     *                      one leaf node's range and the filling
     *                      read's snapshot is one root-to-leaf path).
     * @param max_inodes    inode index space for the generation map.
     */
    PageCache(u64 budget_bytes, u64 frame_size, u32 max_inodes);

    PageCache(const PageCache &) = delete;
    PageCache &operator=(const PageCache &) = delete;

    /** false = zero frames fit the budget; every call is a no-op. */
    bool enabled() const { return frameCount_ > 0; }

    u64 frameSize() const { return frameSize_; }
    u64 frameCount() const { return frameCount_; }

    /**
     * Fill-race guard: capture before the tree read that sources a
     * fill, pass to populate(). A dropFile() in between (remove,
     * truncate, degraded entry) bumps the generation and the fill is
     * discarded instead of resurrecting dropped bytes.
     */
    u64
    generation(u32 inode) const
    {
        return gens_[inode].load(std::memory_order_acquire);
    }

    /**
     * Serves [off, off+len) from a resident frame. The range must lie
     * within one frame. @return true iff @p dst now holds bytes
     * byte-identical to what the locked read path would return: the
     * frame copy revalidated both the frame's PageState word and
     * every stored shadow-tree version.
     */
    bool lookup(u32 inode, u64 off, u8 *dst, u64 len);

    /**
     * Admission decision for a prospective fill of @p frame_off —
     * called *before* the caller pays for the fill read. Normal
     * hints pass a doorkeeper (admitted on the second miss landing on
     * the key's slot, so one-touch extents don't churn the clock);
     * @p eager (AccessHint::ReadMostly) skips it.
     */
    bool admitCheck(u32 inode, u64 frame_off, bool eager);

    /**
     * Installs one frame's bytes, sourced from a successful optimistic
     * tree read of [frame_off, frame_off+valid_len).
     *
     * @param snap  the read's consulted version set (count > 0).
     * @param gen0  generation(inode) captured before that read.
     * @return true iff the frame was installed.
     */
    bool populate(u32 inode, u64 frame_off, const u8 *src, u32 valid_len,
                  const VersionSnapshot &snap, u64 gen0);

    /**
     * Drops every frame of @p inode and bumps its generation so
     * in-flight fills cannot re-insert stale bytes. Called where no
     * tree version signal exists: remove, truncate, degraded-mode
     * entry.
     */
    void dropFile(u32 inode);

    /** Drops every frame (FileSystem::dropCaches()). */
    void dropAll();

    /** Counter snapshot plus budget/occupancy. */
    CacheStats statsSnapshot() const;

  private:
    // ---- PageState: 8-bit state | 56-bit version in one word ----
    static constexpr u8 kUnlocked = 0;
    static constexpr u8 kLocked = 255;
    static constexpr u64 kVersionMask = (1ull << 56) - 1;
    static constexpr u64 kNoKey = ~0ull;

    static u8 stateOf(u64 w) { return static_cast<u8>(w >> 56); }
    static u64
    withState(u64 w, u8 s)
    {
        return (w & kVersionMask) | (static_cast<u64>(s) << 56);
    }
    static u64
    bumpVersion(u64 w, u8 s)
    {
        return (((w & kVersionMask) + 1) & kVersionMask) |
               (static_cast<u64>(s) << 56);
    }

    struct alignas(64) Frame
    {
        std::atomic<u64> ps{0};  ///< PageState word
        std::atomic<u64> key{kNoKey};
        std::atomic<u32> validLen{0};
        std::atomic<u8> refBit{0};
        /**
         * The filling read's consulted (node, version) set. Plain
         * relaxed atomics: the PageState recheck after a reader's
         * copy proves they were stable, so no per-element ordering
         * is needed.
         */
        std::atomic<u32> snapCount{0};
        std::atomic<uintptr_t> snapNodes[VersionSnapshot::kMax] = {};
        std::atomic<u64> snapVers[VersionSnapshot::kMax] = {};
        u8 *data = nullptr;  ///< frameSize_ bytes in the slab
    };

    // ---- open-addressed key -> frame index ----
    //
    // Slot keys: a live (inode << 32 | extent) key always has
    // inode < maxInodes_ < 2^32 - 1, so the two reserved values can
    // never collide with one. Linear probing; erases leave
    // tombstones, and the table is rebuilt under the index lock when
    // tombstones pass a quarter of capacity, so an insert always
    // finds a free slot (live <= cap/2, tombs <= cap/4).
    struct IndexSlot
    {
        std::atomic<u64> key{~0ull};
        std::atomic<u32> frame{0};
    };
    static constexpr u64 kEmptySlot = ~0ull;
    static constexpr u64 kTombSlot = ~0ull - 1;

    u64
    makeKey(u32 inode, u64 off) const
    {
        return (static_cast<u64>(inode) << 32) | (off >> frameShift_);
    }
    u64
    slotStart(u64 key) const
    {
        // Fibonacci scramble: adjacent extents spread across the table.
        return ((key * 0x9e3779b97f4a7c15ull) >> 32) & slotMask_;
    }
    static u32
    inodeOf(u64 key)
    {
        return static_cast<u32>(key >> 32);
    }

    /** Lock-free probe; kNoFrame on miss. Safe against any mutator. */
    u32 indexFind(u64 key) const;
    /** Insert or update (index lock held by caller). */
    void indexInsertLocked(u64 key, u32 idx);
    /** Tombstones @p key iff it maps to @p idx (index lock held). */
    bool indexEraseLocked(u64 key, u32 idx);
    /** Rehashes live entries when tombstones crowd the table. */
    void indexMaybeRebuildLocked();

    /** CAS Unlocked -> Locked. */
    bool tryLockFrame(Frame &f, u64 *locked_word);
    /** Locked -> Unlocked with a version bump (fails in-flight reads). */
    void unlockFrameBump(Frame &f);

    /**
     * Clock / second-chance victim search; at most two sweeps.
     * @return frame index with its lock held, or kNoFrame.
     */
    u32 acquireVictim(u64 *locked_word);
    static constexpr u32 kNoFrame = ~0u;

    /** Erases @p key from the index iff it still maps to @p idx. */
    void eraseMapping(u64 key, u32 idx);

    /** Clears a locked frame's identity (key, snapshot, bytes). */
    void clearFrameLocked(Frame &f);

    /**
     * Failed-validation cleanup: drop the stale frame so it stops
     * costing lookups. Best-effort (skipped under contention).
     */
    void lazyInvalidate(u64 key, u32 idx);

    /**
     * Doorkeeper admission for AccessHint::Normal: a key is admitted
     * on the second miss that lands on its slot, keeping one-touch
     * extents from churning the clock.
     */
    bool doorAdmit(u64 key);

    const u64 frameSize_;
    const u32 frameShift_;  ///< log2(frameSize_)
    const u64 frameCount_;
    std::unique_ptr<Frame[]> frames_;
    std::unique_ptr<u8[]> slab_;
    std::unique_ptr<std::atomic<u64>[]> gens_;
    const u32 maxInodes_;
    std::unique_ptr<IndexSlot[]> slots_;
    u64 slotMask_ = 0;       ///< table capacity - 1 (power of two)
    u64 tombstones_ = 0;     ///< guarded by indexLock_
    SpinLock indexLock_;     ///< serializes every index mutation
    std::atomic<u64> hand_{0};  ///< clock position

    static constexpr u32 kDoorSlots = 1024;
    std::unique_ptr<std::atomic<u64>[]> door_;

    /**
     * Each event ticks both a process-wide registry counter (stats
     * JSON / bench observability) and a per-instance atomic so
     * FileSystem::cacheStats() is accurate with several mounts alive
     * in one process (the differential tests run two side by side).
     */
    struct EventCounter
    {
        stats::Counter *global = nullptr;
        std::atomic<u64> local{0};
        void
        add(u64 n)
        {
            global->add(n);
            local.fetch_add(n, std::memory_order_relaxed);
        }
        u64 value() const { return local.load(std::memory_order_relaxed); }
    };

    mutable EventCounter hits_;
    mutable EventCounter misses_;
    EventCounter fills_;
    EventCounter evicts_;
    EventCounter invalidates_;
};

}  // namespace mgsp

#endif  // MGSP_MGSP_PAGE_CACHE_H
