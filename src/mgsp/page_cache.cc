#include "mgsp/page_cache.h"

#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/racy_copy.h"

namespace mgsp {

namespace {

u32
log2Floor(u64 v)
{
    u32 s = 0;
    while ((1ull << (s + 1)) <= v)
        ++s;
    return s;
}

}  // namespace

PageCache::PageCache(u64 budget_bytes, u64 frame_size, u32 max_inodes)
    : frameSize_(frame_size),
      frameShift_(log2Floor(frame_size)),
      frameCount_(frame_size > 0 ? budget_bytes / frame_size : 0),
      maxInodes_(max_inodes)
{
    MGSP_CHECK(frame_size > 0 && (frame_size & (frame_size - 1)) == 0);
    MGSP_CHECK(max_inodes < ~0u);  // reserved index-slot keys
    auto &r = stats::StatsRegistry::instance();
    hits_.global = &r.counter("cache.hit");
    misses_.global = &r.counter("cache.miss");
    fills_.global = &r.counter("cache.fill");
    evicts_.global = &r.counter("cache.evict");
    invalidates_.global = &r.counter("cache.invalidate");
    if (frameCount_ == 0)
        return;
    frames_ = std::make_unique<Frame[]>(frameCount_);
    // for_overwrite: zeroing the slab would put a multi-ms memset on
    // every mount, and no slab byte is ever served before a fill sets
    // the frame's key and validLen.
    slab_ = std::make_unique_for_overwrite<u8[]>(frameCount_ * frameSize_);
    for (u64 i = 0; i < frameCount_; ++i)
        frames_[i].data = slab_.get() + i * frameSize_;
    gens_ = std::make_unique<std::atomic<u64>[]>(maxInodes_);
    for (u32 i = 0; i < maxInodes_; ++i)
        gens_[i].store(0, std::memory_order_relaxed);
    door_ = std::make_unique<std::atomic<u64>[]>(kDoorSlots);
    for (u32 i = 0; i < kDoorSlots; ++i)
        door_[i].store(kNoKey, std::memory_order_relaxed);
    // Index capacity: power of two holding every frame at <= 50%
    // load, floor 64 so tiny test budgets still probe short chains.
    u64 cap = 64;
    while (cap < frameCount_ * 2)
        cap <<= 1;
    slotMask_ = cap - 1;
    slots_ = std::make_unique<IndexSlot[]>(cap);
}

u32
PageCache::indexFind(u64 key) const
{
    u64 s = slotStart(key);
    for (u64 probes = 0; probes <= slotMask_;
         ++probes, s = (s + 1) & slotMask_) {
        const u64 k = slots_[s].key.load(std::memory_order_acquire);
        if (k == key)
            return slots_[s].frame.load(std::memory_order_relaxed);
        if (k == kEmptySlot)
            return kNoFrame;
        // Tombstone or another key: keep probing.
    }
    return kNoFrame;
}

void
PageCache::indexInsertLocked(u64 key, u32 idx)
{
    u64 s = slotStart(key);
    u64 first_tomb = kEmptySlot;
    for (;; s = (s + 1) & slotMask_) {
        const u64 k = slots_[s].key.load(std::memory_order_relaxed);
        if (k == key) {
            // Remap in place. A concurrent reader may pair the old
            // frame with the new key load; its frame-key recheck
            // turns that into a miss.
            slots_[s].frame.store(idx, std::memory_order_relaxed);
            return;
        }
        if (k == kTombSlot) {
            if (first_tomb == kEmptySlot)
                first_tomb = s;
            continue;
        }
        if (k == kEmptySlot) {
            const u64 t = first_tomb != kEmptySlot ? first_tomb : s;
            slots_[t].frame.store(idx, std::memory_order_relaxed);
            slots_[t].key.store(key, std::memory_order_release);
            if (t == first_tomb)
                --tombstones_;
            return;
        }
    }
}

bool
PageCache::indexEraseLocked(u64 key, u32 idx)
{
    u64 s = slotStart(key);
    for (u64 probes = 0; probes <= slotMask_;
         ++probes, s = (s + 1) & slotMask_) {
        const u64 k = slots_[s].key.load(std::memory_order_relaxed);
        if (k == key) {
            if (slots_[s].frame.load(std::memory_order_relaxed) != idx)
                return false;
            slots_[s].key.store(kTombSlot, std::memory_order_release);
            ++tombstones_;
            indexMaybeRebuildLocked();
            return true;
        }
        if (k == kEmptySlot)
            return false;
    }
    return false;
}

void
PageCache::indexMaybeRebuildLocked()
{
    if (tombstones_ <= (slotMask_ + 1) / 4)
        return;
    // Rehash the live entries. Concurrent lock-free probes may catch
    // the table mid-rebuild and miss a live key — a spurious miss the
    // caller resolves with an ordinary fill; never a wrong hit.
    const u64 cap = slotMask_ + 1;
    std::vector<std::pair<u64, u32>> live;
    live.reserve(frameCount_);
    for (u64 s = 0; s < cap; ++s) {
        const u64 k = slots_[s].key.load(std::memory_order_relaxed);
        if (k != kEmptySlot && k != kTombSlot)
            live.emplace_back(
                k, slots_[s].frame.load(std::memory_order_relaxed));
        slots_[s].key.store(kEmptySlot, std::memory_order_release);
    }
    tombstones_ = 0;
    for (auto &[k, idx] : live)
        indexInsertLocked(k, idx);
}

bool
PageCache::tryLockFrame(Frame &f, u64 *locked_word)
{
    u64 w = f.ps.load(std::memory_order_relaxed);
    if (stateOf(w) != kUnlocked)
        return false;
    const u64 locked = withState(w, kLocked);
    if (!f.ps.compare_exchange_strong(w, locked,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed))
        return false;
    *locked_word = locked;
    return true;
}

void
PageCache::unlockFrameBump(Frame &f)
{
    const u64 w = f.ps.load(std::memory_order_relaxed);
    f.ps.store(bumpVersion(w, kUnlocked), std::memory_order_release);
}

bool
PageCache::lookup(u32 inode, u64 off, u8 *dst, u64 len)
{
    if (!enabled())
        return false;
    MGSP_CHECK(len > 0 && len <= frameSize_ &&
               (off >> frameShift_) == ((off + len - 1) >> frameShift_));
    const u64 key = makeKey(inode, off);

    const u32 idx = indexFind(key);
    if (idx == kNoFrame) {
        misses_.add(1);
        return false;
    }

    Frame &f = frames_[idx];
    const u64 w = f.ps.load(std::memory_order_acquire);
    if (stateOf(w) != kUnlocked) {
        misses_.add(1);
        return false;
    }

    // Optimistic copy: frame metadata and bytes first, then one
    // acquire fence, then the PageState recheck proves everything
    // read so far was stable (no fill/evict/invalidate raced us).
    const u64 fkey = f.key.load(std::memory_order_relaxed);
    const u32 vlen = f.validLen.load(std::memory_order_relaxed);
    const u32 cnt = f.snapCount.load(std::memory_order_relaxed);
    const u64 in_frame = off & (frameSize_ - 1);
    if (fkey != key || cnt == 0 || cnt > VersionSnapshot::kMax ||
        in_frame + len > vlen) {
        misses_.add(1);
        return false;
    }
    uintptr_t nodes[VersionSnapshot::kMax];
    u64 vers[VersionSnapshot::kMax];
    for (u32 i = 0; i < cnt; ++i) {
        nodes[i] = f.snapNodes[i].load(std::memory_order_relaxed);
        vers[i] = f.snapVers[i].load(std::memory_order_relaxed);
        // Start the scattered TreeNode lines towards L1 now so the
        // seqlock validation below overlaps the data copy.
        __builtin_prefetch(reinterpret_cast<const void *>(nodes[i]));
    }
    racyCopy(dst, f.data + in_frame, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (f.ps.load(std::memory_order_relaxed) != w) {
        misses_.add(1);
        return false;
    }

    // The copy is internally consistent and belongs to `key`, whose
    // inode the caller holds open — the TreeNodes are alive. Validate
    // the tree hasn't moved since the fill's snapshot (the same fence
    // above orders these loads after the data copy).
    for (u32 i = 0; i < cnt; ++i) {
        const auto *node = reinterpret_cast<const TreeNode *>(nodes[i]);
        if (!node->version.matches(vers[i])) {
            lazyInvalidate(key, idx);
            misses_.add(1);
            return false;
        }
    }

    // Conditional store: hits on already-referenced frames (the
    // steady state) avoid dirtying the frame header's cache line.
    if (f.refBit.load(std::memory_order_relaxed) == 0)
        f.refBit.store(1, std::memory_order_relaxed);
    hits_.add(1);
    return true;
}

bool
PageCache::doorAdmit(u64 key)
{
    const u32 slot = static_cast<u32>((key * 0x9e3779b97f4a7c15ull) >> 40) &
                     (kDoorSlots - 1);
    return door_[slot].exchange(key, std::memory_order_relaxed) == key;
}

bool
PageCache::admitCheck(u32 inode, u64 frame_off, bool eager)
{
    if (!enabled())
        return false;
    if (eager)
        return true;
    return doorAdmit(makeKey(inode, frame_off));
}

u32
PageCache::acquireVictim(u64 *locked_word)
{
    const u64 limit = 2 * frameCount_;
    for (u64 n = 0; n < limit; ++n) {
        const u64 idx =
            hand_.fetch_add(1, std::memory_order_relaxed) % frameCount_;
        Frame &f = frames_[idx];
        if (f.refBit.load(std::memory_order_relaxed) != 0) {
            f.refBit.store(0, std::memory_order_relaxed);  // second chance
            continue;
        }
        if (tryLockFrame(f, locked_word))
            return static_cast<u32>(idx);
    }
    return kNoFrame;
}

void
PageCache::eraseMapping(u64 key, u32 idx)
{
    std::lock_guard<SpinLock> g(indexLock_);
    indexEraseLocked(key, idx);
}

void
PageCache::clearFrameLocked(Frame &f)
{
    f.key.store(kNoKey, std::memory_order_relaxed);
    f.validLen.store(0, std::memory_order_relaxed);
    f.snapCount.store(0, std::memory_order_relaxed);
    f.refBit.store(0, std::memory_order_relaxed);
}

void
PageCache::lazyInvalidate(u64 key, u32 idx)
{
    Frame &f = frames_[idx];
    u64 locked;
    if (!tryLockFrame(f, &locked))
        return;
    if (f.key.load(std::memory_order_relaxed) == key) {
        eraseMapping(key, idx);
        clearFrameLocked(f);
        invalidates_.add(1);
    }
    unlockFrameBump(f);
}

bool
PageCache::populate(u32 inode, u64 frame_off, const u8 *src, u32 valid_len,
                    const VersionSnapshot &snap, u64 gen0)
{
    if (!enabled() || snap.count == 0 || snap.count > VersionSnapshot::kMax ||
        valid_len == 0 || valid_len > frameSize_)
        return false;
    MGSP_CHECK(frame_off % frameSize_ == 0);
    const u64 key = makeKey(inode, frame_off);
    if (gens_[inode].load(std::memory_order_acquire) != gen0)
        return false;

    // Refresh in place when the extent is already resident (a newer
    // fill after an invalidating write), otherwise claim a victim.
    u32 idx = indexFind(key);
    u64 locked;
    if (idx != kNoFrame) {
        if (!tryLockFrame(frames_[idx], &locked))
            return false;  // contended; the next miss retries
        if (frames_[idx].key.load(std::memory_order_relaxed) != key) {
            // Recycled between lookup and lock; fall through to claim.
            unlockFrameBump(frames_[idx]);
            idx = kNoFrame;
        }
    }
    if (idx == kNoFrame) {
        idx = acquireVictim(&locked);
        if (idx == kNoFrame)
            return false;  // everything referenced or locked
        Frame &victim = frames_[idx];
        const u64 old_key = victim.key.load(std::memory_order_relaxed);
        if (old_key != kNoKey) {
            eraseMapping(old_key, idx);
            evicts_.add(1);
        }
    }

    Frame &f = frames_[idx];
    f.key.store(key, std::memory_order_relaxed);
    f.validLen.store(valid_len, std::memory_order_relaxed);
    for (u32 i = 0; i < snap.count; ++i) {
        f.snapNodes[i].store(reinterpret_cast<uintptr_t>(snap.nodes[i]),
                             std::memory_order_relaxed);
        f.snapVers[i].store(snap.versions[i], std::memory_order_relaxed);
    }
    f.snapCount.store(snap.count, std::memory_order_relaxed);
    racyStore(f.data, src, valid_len);

    // Publish under the index lock with a final generation check: a
    // dropFile() bumps the generation *before* sweeping the index,
    // so either it sees our mapping and clears it, or we see the bump
    // here and discard the fill.
    bool inserted = false;
    {
        std::lock_guard<SpinLock> g(indexLock_);
        if (gens_[inode].load(std::memory_order_relaxed) == gen0) {
            indexInsertLocked(key, idx);
            inserted = true;
        }
    }
    if (!inserted)
        clearFrameLocked(f);
    else
        f.refBit.store(1, std::memory_order_relaxed);
    unlockFrameBump(f);
    if (inserted)
        fills_.add(1);
    return inserted;
}

void
PageCache::dropFile(u32 inode)
{
    if (!enabled())
        return;
    MGSP_CHECK(inode < maxInodes_);
    gens_[inode].fetch_add(1, std::memory_order_acq_rel);
    // Collect under the index lock, clear frames outside it (frame
    // locks are never acquired under the index lock).
    std::vector<std::pair<u64, u32>> victims;
    {
        std::lock_guard<SpinLock> g(indexLock_);
        for (u64 s = 0; s <= slotMask_; ++s) {
            const u64 k = slots_[s].key.load(std::memory_order_relaxed);
            if (k == kEmptySlot || k == kTombSlot || inodeOf(k) != inode)
                continue;
            victims.emplace_back(
                k, slots_[s].frame.load(std::memory_order_relaxed));
            slots_[s].key.store(kTombSlot, std::memory_order_release);
            ++tombstones_;
        }
        indexMaybeRebuildLocked();
    }
    for (auto &[key, idx] : victims) {
        Frame &f = frames_[idx];
        u64 locked;
        // Blocking acquire: frame locks are held only for short
        // critical sections, and holders never wait on us.
        while (!tryLockFrame(f, &locked))
            cpuRelax();
        if (f.key.load(std::memory_order_relaxed) == key) {
            clearFrameLocked(f);
            invalidates_.add(1);
        }
        unlockFrameBump(f);
    }
}

void
PageCache::dropAll()
{
    if (!enabled())
        return;
    for (u32 i = 0; i < maxInodes_; ++i)
        gens_[i].fetch_add(1, std::memory_order_acq_rel);
    std::vector<std::pair<u64, u32>> victims;
    {
        std::lock_guard<SpinLock> g(indexLock_);
        for (u64 s = 0; s <= slotMask_; ++s) {
            const u64 k = slots_[s].key.load(std::memory_order_relaxed);
            if (k != kEmptySlot && k != kTombSlot)
                victims.emplace_back(
                    k, slots_[s].frame.load(std::memory_order_relaxed));
            slots_[s].key.store(kEmptySlot, std::memory_order_release);
        }
        tombstones_ = 0;
    }
    for (auto &[key, idx] : victims) {
        Frame &f = frames_[idx];
        u64 locked;
        while (!tryLockFrame(f, &locked))
            cpuRelax();
        if (f.key.load(std::memory_order_relaxed) == key) {
            clearFrameLocked(f);
            invalidates_.add(1);
        }
        unlockFrameBump(f);
    }
}

CacheStats
PageCache::statsSnapshot() const
{
    CacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.evictions = evicts_.value();
    s.invalidations = invalidates_.value();
    s.frameBytes = frameCount_ * frameSize_;
    u64 resident = 0;
    for (u64 i = 0; i < frameCount_; ++i) {
        if (frames_[i].key.load(std::memory_order_relaxed) != kNoKey)
            ++resident;
    }
    s.residentFrames = resident;
    return s;
}

}  // namespace mgsp
