/**
 * @file
 * The Multi-granularity Shadow Log (MSL, paper §III-B).
 *
 * A per-file radix tree whose levels manage shadow logs of decreasing
 * granularity. The root's "log" is the file's home extent itself; a
 * node's log block is allocated lazily from the pool. Per-node bitmap
 * words locate the latest copy of every byte:
 *
 *  - non-leaf: bit 0 (valid) = this node's log holds the latest data
 *    for the part of its range not superseded by descendants;
 *    bit 1 (existing) = some descendant holds valid data.
 *  - leaf: leafSubBits valid bits, one per fine-grained sub-unit.
 *
 * Shadow logging (paper Fig. 3): a write landing on a node whose log
 * is *invalid* writes into the node's own log and sets the valid bit
 * (redo style); a write landing on a *valid* log writes the new data
 * into the nearest valid ancestor's log region and clears the bit
 * (the old copy in the node's log acts as the undo copy). Either way
 * one write costs one data-block write — no double write.
 *
 * The atomic commit point of an operation is the publication of its
 * metadata-log entry; this class only *stages* bitmap changes
 * (StagedMetadata slots) and applies them after commit.
 *
 * Lazy cleaning (paper §III-B2): a coarse write clears the written
 * node's existing bit and leaves descendants' stale bitmaps in place;
 * a later writer that flips a node's existing bit 0->1 first durably
 * zeroes that node's immediate children's bitmaps. The invariant: a
 * node's bitmap is meaningful only if every ancestor's existing bit
 * on its path is set.
 */
#ifndef MGSP_MGSP_SHADOW_TREE_H
#define MGSP_MGSP_SHADOW_TREE_H

#include <atomic>
#include <memory>
#include <vector>

#include "common/slice.h"
#include "common/stats.h"
#include "common/status.h"
#include "mgsp/config.h"
#include "mgsp/metadata_log.h"
#include "mgsp/mg_lock.h"
#include "mgsp/node_table.h"
#include "pmem/pmem_pool.h"

namespace mgsp {

/** Non-leaf bitmap bits. */
inline constexpr u64 kBitValid = 1;
inline constexpr u64 kBitExisting = 2;

/** Static shape of a file's radix tree. */
struct TreeGeometry
{
    u64 leafSize = 0;
    u32 degree = 0;
    u32 height = 0;  ///< leaves live at level == height; root at 0
    u64 rootCoverage = 0;

    /** Smallest tree whose root covers @p capacity bytes. */
    static TreeGeometry forCapacity(u64 capacity, u64 leaf_size,
                                    u32 degree);

    /** Bytes covered by one node at @p level. */
    u64
    coverage(u32 level) const
    {
        u64 c = leafSize;
        for (u32 l = height; l > level; --l)
            c *= degree;
        return c;
    }
};

/** One volatile radix-tree node. Persistent state is in NodeTable. */
struct TreeNode
{
    TreeNode(u32 level_in, u64 index_in, u64 start, u64 cov,
             TreeNode *parent_in, bool leaf)
        : level(level_in), index(index_in), startOff(start),
          coverage(cov), parent(parent_in)
    {
        if (!leaf)
            children = std::make_unique<std::atomic<TreeNode *>[]>(64);
    }

    ~TreeNode()
    {
        if (children) {
            for (u32 i = 0; i < 64; ++i)
                delete children[i].load(std::memory_order_relaxed);
        }
    }

    const u32 level;
    const u64 index;
    const u64 startOff;
    const u64 coverage;
    TreeNode *const parent;

    std::atomic<u32> recIdx{kNoRecord};
    std::atomic<u64> logOff{0};
    std::unique_ptr<std::atomic<TreeNode *>[]> children;

    MglLock lock;
    SpinLock transition;  ///< guards creation + existing 0->1 cleanup
    /**
     * Seqlock version validating optimistic reads. Odd while a writer
     * may be mutating this node's bitmap word, log pointer or log
     * data; bumped under the node's W lock (lockNode/releaseLocks and
     * the raw covering-W sites: greedy writes, the append fast path,
     * the cleaner) or under @ref transition (existing-bit flips and
     * stale-child zeroing in ensureExisting).
     */
    SeqVersion version;

    /**
     * Epoch-mode pending bitmap overlay (DESIGN.md §15). Between an
     * acknowledged epoch write and the epoch's group commit, the
     * node's newest bitmap word lives here, not in the node table:
     * bitmapOf() returns pendingBits while hasPending is set, and
     * committedBitmapOf() (role decisions, crash state) keeps reading
     * the table. Writers store pendingBits then flip hasPending with
     * release under the node's W lock; the commit stores the same
     * value into the table *first* and only then clears hasPending, a
     * value-identical transition lock-free readers never observe. A
     * separate flag (not an in-band sentinel) because a fully-set
     * bitmap word is legitimate.
     */
    std::atomic<u64> pendingBits{0};
    std::atomic<bool> hasPending{false};

    /**
     * Cached position of this node's slot in its inode's epoch
     * accumulator (MgspFs::mergeEpochSlots), making the per-op merge
     * O(1) instead of a linear scan. Self-validating: the accumulator
     * is append-only until the commit clears it, so the cache is
     * current iff epochSlots[epochSlotPos].recIdx matches this node's
     * record — any stale value simply fails that check. Written and
     * read only under the owning inode's epoch mutex.
     */
    u32 epochSlotPos = 0xffffffffu;
};

/** A lock acquired during an operation, for ordered release. */
struct HeldLock
{
    TreeNode *node;
    MglMode mode;
};

/**
 * The (node, seqlock version) set one optimistic read consulted,
 * exported by tryReadOptimistic() for the DRAM read cache: a frame
 * filled from such a read stores this set and revalidates every
 * version on each hit, so any writer mutation after the snapshot
 * (version bump) turns the hit into a miss. Bounded small — a frame
 * spans one leaf's range, so the consulted set is one root-to-leaf
 * path; reads that consult more (version-set overflow) simply are not
 * cacheable.
 */
struct VersionSnapshot
{
    static constexpr u32 kMax = 16;
    const TreeNode *nodes[kMax];
    u64 versions[kMax];
    u32 count = 0;
};

/**
 * Value snapshot of one tree's counters for the ablation/breakdown
 * analysis (see ShadowTree::snapshotStats / MgspFs::statsFor). Plain
 * integers: safe to copy, return and keep after the file is gone.
 */
struct TreeStats
{
    u64 coarseLogWrites = 0;  ///< interior-node stops
    u64 leafLogWrites = 0;
    u64 fineSubWrites = 0;    ///< sub-block granular units
    u64 minTreeHits = 0;
    u64 minTreeMisses = 0;
    u64 writtenBackBytes = 0; ///< home-extent bytes copied
};

/** The live atomic counters behind TreeStats. */
struct TreeCounters
{
    std::atomic<u64> coarseLogWrites{0};
    std::atomic<u64> leafLogWrites{0};
    std::atomic<u64> fineSubWrites{0};
    std::atomic<u64> minTreeHits{0};
    std::atomic<u64> minTreeMisses{0};
    std::atomic<u64> writtenBackBytes{0};

    TreeStats
    snapshot() const
    {
        TreeStats s;
        s.coarseLogWrites = coarseLogWrites.load(std::memory_order_relaxed);
        s.leafLogWrites = leafLogWrites.load(std::memory_order_relaxed);
        s.fineSubWrites = fineSubWrites.load(std::memory_order_relaxed);
        s.minTreeHits = minTreeHits.load(std::memory_order_relaxed);
        s.minTreeMisses = minTreeMisses.load(std::memory_order_relaxed);
        s.writtenBackBytes =
            writtenBackBytes.load(std::memory_order_relaxed);
        return s;
    }
};

/** What one cleanRange() pass wrote back and returned to free lists. */
struct ReclaimStats
{
    u64 bytesWrittenBack = 0;  ///< bytes copied to the home extent
    u64 blocksReclaimed = 0;   ///< shadow-log blocks freed to the pool
    u64 bytesReclaimed = 0;    ///< pool bytes those blocks occupied
    u64 recordsReclaimed = 0;  ///< node records freed to the table
};

/** What one scrub() checksum-verification pass found. */
struct ScrubStats
{
    u64 unitsVerified = 0;   ///< CRC-covered units recomputed
    u64 crcMismatches = 0;   ///< verified units whose CRC disagreed
    u64 poisonSkipped = 0;   ///< log ranges skipped as poisoned
};

/**
 * Per-file shadow-log tree. Thread-safe under the MGL protocol: all
 * public operations acquire node locks unless @p lockless is passed
 * (greedy mode, where the caller holds a covering W/R lock).
 */
class ShadowTree
{
  public:
    /**
     * @param device      the NVM arena.
     * @param pool        shadow-log block allocator.
     * @param table       persistent node records.
     * @param config      engine config (not owned; outlives the tree).
     * @param inode_idx   owning file's inode index.
     * @param extent_off  arena offset of the file's home extent.
     * @param capacity    extent size in bytes.
     * @param root_rec    node record index of the root.
     */
    ShadowTree(PmemDevice *device, PmemPool *pool, NodeTable *table,
               const MgspConfig *config, u32 inode_idx, u64 extent_off,
               u64 capacity, u32 root_rec);
    ~ShadowTree();

    ShadowTree(const ShadowTree &) = delete;
    ShadowTree &operator=(const ShadowTree &) = delete;

    const TreeGeometry &geometry() const { return geo_; }
    TreeNode *root() { return root_.get(); }
    TreeCounters &stats() { return stats_; }

    /** Copyable snapshot of the tree counters. */
    TreeStats snapshotStats() const { return stats_.snapshot(); }

    /**
     * Number of bitmap slots a write [off, off+len) will stage.
     * Pure geometry; no side effects. Callers split writes whose
     * count exceeds MetaLogEntry::kMaxSlots.
     */
    u32 planSlotCount(u64 off, u64 len) const;

    /**
     * Phase 1 of a write: acquires MGL locks, writes the data into
     * the shadow logs (flushed, not fenced) and stages the bitmap
     * changes. The caller then fences, commits the metadata entry,
     * calls applyStaged(), and finally releases @p locks.
     *
     * @param lockless  skip node locking (caller holds a covering
     *                  lock — greedy or file-lock mode).
     */
    Status performWrite(u64 off, ConstSlice data, StagedMetadata *staged,
                        std::vector<HeldLock> *locks, bool lockless);

    /** Applies committed bitmap words (store + flush; no fence). */
    void applyStaged(const StagedMetadata &staged);

    /**
     * Epoch mode: publishes @p staged's bitmap words as the pending
     * overlay of their TreeNodes (staged.nodes) instead of the node
     * table, making the write visible to readers while the committed
     * words stay untouched until the epoch's group commit. Call
     * between performWrite() and releasing its locks, where
     * applyStaged() would go.
     */
    void applyStagedVolatile(const StagedMetadata &staged);

    // ---- adaptive per-subtree log policy (DESIGN.md §15) --------
    /**
     * Number of policy subtrees: the root's immediate children that
     * intersect the file capacity (one for a height-0 tree), capped
     * at kPolicySubtrees.
     */
    u32 policySubtrees() const;

    /** File range [*start, *start + *len) covered by subtree @p idx. */
    void policySubtreeRange(u32 idx, u64 *start, u64 *len) const;

    /**
     * Counts one access for the subtree covering @p off. Relaxed
     * atomics; called from the epoch read/write paths.
     */
    void noteAccess(u64 off, bool is_write);

    /**
     * Reads subtree @p idx's decayed access counters and halves them
     * (exponential decay per policy evaluation). Concurrent bumps may
     * be lost to the halving store — the counters are a heuristic,
     * not an invariant.
     */
    void sampleAccessAndDecay(u32 idx, u64 *reads, u64 *writes);

    /**
     * Accesses counted since the last resetPolicyAccessDelta() —
     * lets the policy evaluator skip the full per-subtree sweep when
     * not enough traffic has arrived to change any decision.
     */
    u64 policyAccessDelta() const
    {
        return polDelta_.load(std::memory_order_relaxed);
    }
    void resetPolicyAccessDelta()
    {
        polDelta_.store(0, std::memory_order_relaxed);
    }

    /**
     * Reads the latest bytes of [off, off+out.size()). Acquires IR/R
     * locks into @p locks unless @p lockless.
     */
    Status performRead(u64 off, MutSlice out,
                       std::vector<HeldLock> *locks, bool lockless);

    /**
     * Lock-free read attempt: descends with NO IR/R acquisitions,
     * snapshots the seqlock version of every node it consults
     * (including the ancestors skipped by the minimum-search-tree
     * entry point), copies the data, then re-validates.
     *
     * @return true iff @p out now holds a consistent copy of
     *         [off, off+out.size()). false = a writer, the cleaner or
     *         a version-set overflow interfered; the caller retries
     *         or falls back to the locked performRead(), discarding
     *         @p out's (possibly torn) contents.
     *
     * @param snap_out  optional: receives the consulted (node,
     *         version) set for read-cache frame fills. Snapshots are
     *         taken *before* the data copies, so a write racing the
     *         fill leaves the stored set stale and the frame's first
     *         revalidation rejects it. count == 0 on overflow (the
     *         read succeeded but is not cacheable).
     */
    bool tryReadOptimistic(u64 off, MutSlice out,
                           VersionSnapshot *snap_out = nullptr);

    /** Releases locks in acquisition order and clears the vector. */
    static void releaseLocks(std::vector<HeldLock> *locks);

    /**
     * Copies the latest data of [off, off+len) back to the home
     * extent and clears the covered bitmap ranges. Crash consistent
     * without a metadata entry (every intermediate state is valid).
     * Caller must hold covering exclusivity (close path or file lock).
     */
    Status writeBackRange(u64 off, u64 len);

    /**
     * Cleaner pass: writeBackRange() plus reclamation — every node
     * fully covered by the (unit-aligned) range returns its shadow-log
     * block to the pool and its node record to the table. Unlike
     * writeBackAll() the volatile TreeNodes stay allocated, so
     * concurrent descents through the minimum-search-tree cache stay
     * safe. Caller must hold covering exclusivity over the range (W
     * on a covering node, or the file lock).
     *
     * Crash safety: every victim record's persistent in-use flag is
     * cleared and *fenced before* its pool cell is recycled, so a
     * recovery scan can never find two live records referencing one
     * cell.
     */
    Status cleanRange(u64 off, u64 len, ReclaimStats *reclaim);

    /**
     * Close path: writes everything back, clears all bitmaps, frees
     * all log blocks and node records except the root.
     */
    Status writeBackAll();

    /**
     * Checksum-verification pass (DESIGN.md §12): recomputes the
     * CRC32C of every *consultable* CRC-covered unit — own-log bytes
     * whose present bit and valid bit are both set — and compares
     * against the stored value, skipping (and counting) poisoned
     * ranges. Reports only; quarantine decisions belong to the
     * caller. Serialises against writers by holding R on the root
     * for the duration.
     */
    ScrubStats scrub();

    /**
     * Ranged scrub (DESIGN.md §18): the same consultable-unit CRC
     * verification as scrub(), restricted to nodes whose coverage
     * intersects [off, off+len). Reads from a fenced file run this
     * after the data copy — crcMismatches == 0 is the "provably
     * intact" verdict that lets the bytes reach the caller; anything
     * else rejects the read. Same serialisation as scrub(): R on the
     * root for the duration, so call it with no tree locks held.
     */
    ScrubStats verifyRange(u64 off, u64 len);

    /**
     * Mount path: re-attaches a persistent record to the volatile
     * tree (creating ancestors as needed).
     */
    void attachRecord(u32 rec_idx, const NodeRecord &rec);

    /**
     * The smallest node that fully covers [off, off+len) — used by
     * greedy locking; also the minimum-search-tree start point.
     */
    TreeNode *coveringNode(u64 off, u64 len);

  private:
    bool isLeaf(const TreeNode *n) const { return n->level == geo_.height; }

    /**
     * Newest bitmap word: the epoch pending overlay when set, the
     * committed word otherwise. What readers (and read-modify-write
     * edges) must consult.
     */
    u64 bitmapOf(const TreeNode *n) const;

    /**
     * Committed bitmap word only (0 when no record), ignoring any
     * epoch overlay. Role decisions and run splits use this: the
     * committed copy, located by the persistent bits, must survive a
     * crash before the epoch commits.
     */
    u64 committedBitmapOf(const TreeNode *n) const;

    /** Policy subtree index covering file offset @p off. */
    u32 policyIndexOf(u64 off) const;

    /** Fixed-capacity (node, version) set of one optimistic read. */
    struct ReadSnapshots
    {
        static constexpr u32 kMax = 64;
        const TreeNode *nodes[kMax];
        u64 versions[kMax];
        u32 count = 0;
    };

    /**
     * Snapshots @p n's version into @p snaps. false on a mid-flight
     * writer (odd version) or set overflow — abort the attempt.
     */
    bool snapVersion(const TreeNode *n, ReadSnapshots *snaps) const;

    /**
     * Copies [off, off+len) of the file range from @p holder's log
     * region (home extent for the root) without locks. false if the
     * log vanished under us (cleaner reclaim; validation would fail
     * anyway).
     */
    bool optimisticRegionRead(const TreeNode *holder, u64 off, u8 *out,
                              u64 len) const;
    bool optimisticReadNode(TreeNode *n, u64 off, u64 len, u8 *out,
                            const TreeNode *last_valid,
                            ReadSnapshots *snaps);
    bool optimisticLeafRead(const TreeNode *leaf, u64 off, u64 len,
                            u8 *out, const TreeNode *last_valid) const;

    /** Arena offset of @p holder's log bytes for file offset @p off. */
    u64 regionOff(const TreeNode *holder, u64 off) const;

    TreeNode *getOrCreateChild(TreeNode *parent, u32 slot);
    TreeNode *childAt(const TreeNode *parent, u32 slot) const;

    /** Materialises the node's persistent record. */
    Status ensureRecord(TreeNode *n);
    /** Materialises the node's shadow-log block. */
    Status ensureLog(TreeNode *n);

    /**
     * Guarantees n's existing bit is set, durably zeroing stale
     * immediate children first (lazy-cleaning invariant). Plain mode
     * flips the committed bit directly (flushed, fenced by the op's
     * commit). Epoch mode must not touch committed words between
     * commits — a lazily-retired older epoch entry could replay over
     * the flip — so the set is staged into @p staged (and the node's
     * pending overlay) and rides the epoch commit instead; the child
     * zeroing stays direct and fenced, which is safe standalone.
     */
    Status ensureExisting(TreeNode *n, StagedMetadata *staged);

    void lockNode(TreeNode *n, MglMode mode, std::vector<HeldLock> *locks,
                  bool lockless);

    Status writeRange(TreeNode *n, u64 off, u64 len, const u8 *data,
                      TreeNode *last_valid, StagedMetadata *staged,
                      std::vector<HeldLock> *locks, bool lockless);
    Status leafWrite(TreeNode *leaf, u64 off, u64 len, const u8 *data,
                     TreeNode *last_valid, StagedMetadata *staged);
    Status readRange(TreeNode *n, u64 off, u64 len, u8 *out,
                     TreeNode *last_valid, std::vector<HeldLock> *locks,
                     bool lockless);
    Status leafRead(TreeNode *leaf, u64 off, u64 len, u8 *out,
                    TreeNode *last_valid) const;

    /**
     * device_->read that surfaces poison as Status::mediaError: the
     * pre-read poison query decides the status, the read itself makes
     * the hit observable (media-error hook + heal progress), so a
     * bounded retry of the whole operation can ride out transient
     * faults.
     */
    Status readMedia(u64 off, u8 *out, u64 len) const;

    /**
     * Copies @p len file bytes at @p file_off from @p src's log
     * region to the home extent (flush, no fence). @p own_unit >= 0
     * selects the CRC unit of @p src's entry guarding these exact
     * bytes (-1 = bytes are an unverifiable portion of an ancestor
     * block). Poisoned or CRC-mismatching shadow bytes abort with
     * mediaError/corruption in strict mode; in salvage mode the copy
     * is skipped — the home extent keeps the base bytes — and the
     * write_back.* salvage counters tick.
     */
    Status copyHome(const TreeNode *src, u64 file_off, u64 len,
                    int own_unit);

    Status writeBackNode(TreeNode *n, u64 off, u64 len,
                         TreeNode *last_valid);
    void clearSubtreeMetadata(TreeNode *n, bool is_root);

    u32 countRange(u32 level, u64 node_start, u64 off, u64 len) const;

    /** Nearest ancestor of @p n (inclusive) with a valid log. */
    TreeNode *nearestValid(TreeNode *n);

    /** True if node granularity may hold a coarse log. */
    bool
    coarseStopAllowed(const TreeNode *n) const
    {
        return config_->enableMultiGranularity && n->parent != nullptr &&
               n->coverage <= config_->maxCoarseLogSize;
    }

    PmemDevice *device_;
    PmemPool *pool_;
    NodeTable *table_;
    const MgspConfig *config_;
    TreeGeometry geo_;
    u32 inodeIdx_;
    u64 extentOff_;
    u64 capacity_;

    std::unique_ptr<TreeNode> root_;
    std::atomic<TreeNode *> minSearch_;  ///< minimum-search-tree cache
    TreeCounters stats_;

    /** Per-top-level-subtree access counters (max degree = 64). */
    static constexpr u32 kPolicySubtrees = 64;
    std::atomic<u64> polReads_[kPolicySubtrees] = {};
    std::atomic<u64> polWrites_[kPolicySubtrees] = {};
    std::atomic<u64> polDelta_ = 0;  ///< accesses since last policy eval

    // Cached registry counters for salvage-mode write-back skips.
    stats::Counter *wbCrcSkips_;
    stats::Counter *wbPoisonSkips_;
    stats::Counter *wbSalvagedBytes_;
};

}  // namespace mgsp

#endif  // MGSP_MGSP_SHADOW_TREE_H
