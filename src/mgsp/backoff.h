/**
 * @file
 * Bounded exponential backoff for transient resource exhaustion.
 *
 * Every retry loop against an exhausted internal resource (shadow-log
 * pool, node table, metadata log) shares this one policy: a fixed
 * attempt budget AND a wall-clock deadline, exponential pauses with a
 * cap between attempts, and enough accounting for the alloc.* /
 * watchdog.* counters. Replaces the unbounded MetadataLog::claim()
 * spin and the old ad-hoc 2-attempt OOM retry in the write path
 * (DESIGN.md §13).
 *
 * The pause deliberately spins on the monotonic clock (sleeping for
 * longer pauses) rather than using spinDelay(): the latency-injection
 * gate is disabled in tests, and backoff must still pace real time.
 */
#ifndef MGSP_MGSP_BACKOFF_H
#define MGSP_MGSP_BACKOFF_H

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/types.h"

namespace mgsp {

/** One retry sequence. Construct per operation; not thread safe. */
class BoundedBackoff
{
  public:
    BoundedBackoff(u32 attempts, u64 deadline_nanos, u64 initial_nanos,
                   u64 max_nanos)
        : attempts_(attempts), deadlineNanos_(deadline_nanos),
          pauseNanos_(initial_nanos), maxPauseNanos_(max_nanos),
          startNanos_(monotonicNanos())
    {
    }

    /**
     * Call after a failed attempt. Pauses (exponential, capped) and
     * @return true if the caller may retry; false once the attempt
     * budget or the deadline is spent — the caller then surfaces
     * ResourceBusy / the allocator's error instead of looping.
     */
    bool
    nextAttempt()
    {
        ++attemptsUsed_;
        if (attemptsUsed_ >= attempts_ || elapsedNanos() >= deadlineNanos_)
            return false;
        pause(pauseNanos_);
        pausedNanos_ += pauseNanos_;
        if (pauseNanos_ < maxPauseNanos_)
            pauseNanos_ = pauseNanos_ * 2 < maxPauseNanos_
                              ? pauseNanos_ * 2
                              : maxPauseNanos_;
        return true;
    }

    u64 elapsedNanos() const { return monotonicNanos() - startNanos_; }
    u64 pausedNanos() const { return pausedNanos_; }
    u32 attemptsUsed() const { return attemptsUsed_; }
    bool deadlineExceeded() const { return elapsedNanos() > deadlineNanos_; }

  private:
    static void
    pause(u64 nanos)
    {
        if (nanos == 0)
            return;
        // Short pauses spin (a sleep would oversleep by more than the
        // pause itself); long ones yield the core.
        if (nanos >= 100'000) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
            return;
        }
        const u64 until = monotonicNanos() + nanos;
        while (monotonicNanos() < until) {
        }
    }

    const u32 attempts_;
    const u64 deadlineNanos_;
    u64 pauseNanos_;
    const u64 maxPauseNanos_;
    const u64 startNanos_;
    u64 pausedNanos_ = 0;
    u32 attemptsUsed_ = 0;
};

}  // namespace mgsp

#endif  // MGSP_MGSP_BACKOFF_H
