#include "workloads/mobibench.h"

#include "common/clock.h"
#include "common/random.h"

namespace mgsp {

StatusOr<MobibenchResult>
runMobibench(FileSystem *fs, const MobibenchConfig &config)
{
    minidb::DbOptions options;
    options.journal = config.journal;
    options.fileCapacity = config.fileCapacity;
    StatusOr<std::unique_ptr<minidb::Database>> db =
        minidb::Database::open(fs, "mobibench.db", options);
    if (!db.isOk())
        return db.status();
    MGSP_RETURN_IF_ERROR((*db)->createTable("tbl"));

    Rng rng(config.seed);
    std::vector<u8> record = rng.nextBytes(config.recordBytes);

    // Preload for update/delete; delete also needs enough rows to
    // consume.
    u64 preload = config.op == MobiOp::Insert ? 0 : config.initialRows;
    if (config.op == MobiOp::Delete)
        preload = std::max(preload, config.transactions);
    if (preload > 0) {
        MGSP_RETURN_IF_ERROR((*db)->begin());
        for (u64 k = 0; k < preload; ++k) {
            MGSP_RETURN_IF_ERROR((*db)->insert(
                "tbl", static_cast<i64>(k),
                ConstSlice(record.data(), record.size())));
        }
        MGSP_RETURN_IF_ERROR((*db)->commit());
        MGSP_RETURN_IF_ERROR((*db)->checkpoint());
    }

    MobibenchResult result;
    Stopwatch timer;
    for (u64 t = 0; t < config.transactions; ++t) {
        switch (config.op) {
          case MobiOp::Insert:
            MGSP_RETURN_IF_ERROR((*db)->insert(
                "tbl", static_cast<i64>(t),
                ConstSlice(record.data(), record.size())));
            break;
          case MobiOp::Update:
            MGSP_RETURN_IF_ERROR((*db)->update(
                "tbl",
                static_cast<i64>(rng.nextBelow(config.initialRows)),
                ConstSlice(record.data(), record.size())));
            break;
          case MobiOp::Delete:
            MGSP_RETURN_IF_ERROR(
                (*db)->remove("tbl", static_cast<i64>(t)));
            break;
        }
    }
    result.seconds = timer.elapsedSeconds();
    result.transactions = config.transactions;
    return result;
}

}  // namespace mgsp
