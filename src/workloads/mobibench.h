/**
 * @file
 * Mobibench-style SQLite transaction driver (paper Fig. 11).
 *
 * Mobibench's database test issues basic single-statement
 * transactions — INSERT, UPDATE or DELETE of ~100-byte records —
 * against SQLite, measuring transactions per second. This driver
 * reproduces that pattern on minidb over any vfs::FileSystem.
 */
#ifndef MGSP_WORKLOADS_MOBIBENCH_H
#define MGSP_WORKLOADS_MOBIBENCH_H

#include "common/status.h"
#include "common/types.h"
#include "minidb/db.h"

namespace mgsp {

/** Which Mobibench transaction mix to run. */
enum class MobiOp { Insert, Update, Delete };

/** Job description. */
struct MobibenchConfig
{
    MobiOp op = MobiOp::Insert;
    minidb::JournalMode journal = minidb::JournalMode::Wal;
    /** Rows preloaded before update/delete runs. */
    u64 initialRows = 4000;
    /** Transactions to execute (each = one statement, as Mobibench). */
    u64 transactions = 2000;
    /** Record payload size. */
    u64 recordBytes = 100;
    u64 seed = 7;
    /** Capacity of the db/-wal files on extent-based engines. */
    u64 fileCapacity = 32 * MiB;
};

/** Result of a run. */
struct MobibenchResult
{
    u64 transactions = 0;
    double seconds = 0;

    double
    tps() const
    {
        return seconds > 0 ? static_cast<double>(transactions) / seconds
                           : 0.0;
    }
};

/** Runs the job against a fresh database on @p fs. */
StatusOr<MobibenchResult> runMobibench(FileSystem *fs,
                                       const MobibenchConfig &config);

}  // namespace mgsp

#endif  // MGSP_WORKLOADS_MOBIBENCH_H
