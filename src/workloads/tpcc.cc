#include "workloads/tpcc.h"

#include <cstring>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"

namespace mgsp {
namespace {

using minidb::Database;

// ---- composite-key packing --------------------------------------
// Warehouse/district/customer ids are small; pack them into an i64
// with disjoint digit ranges so ordering stays meaningful.

i64
districtKey(u32 w, u32 d)
{
    return static_cast<i64>(w) * 100 + d;
}

i64
customerKey(u32 w, u32 d, u32 c)
{
    return (static_cast<i64>(w) * 100 + d) * 100000 + c;
}

i64
stockKey(u32 w, u32 i)
{
    return static_cast<i64>(w) * 1000000 + i;
}

i64
orderKey(u32 w, u32 d, u64 o)
{
    return (static_cast<i64>(w) * 100 + d) * 10000000 + static_cast<i64>(o);
}

i64
orderLineKey(u32 w, u32 d, u64 o, u32 line)
{
    return orderKey(w, d, o) * 16 + line;
}

// ---- fixed-layout rows -------------------------------------------

struct WarehouseRow
{
    double ytd;
    char name[24];
};

struct DistrictRow
{
    double ytd;
    u64 nextOrderId;
    char name[24];
};

struct CustomerRow
{
    double balance;
    double ytdPayment;
    u32 paymentCount;
    char data[200];
};

struct ItemRow
{
    double price;
    char name[32];
};

struct StockRow
{
    i32 quantity;
    u32 orderCount;
    char dist[24];
};

struct OrderRow
{
    u32 customer;
    u32 lineCount;
    u64 entryNanos;
};

struct OrderLineRow
{
    u32 item;
    u32 quantity;
    double amount;
};

struct HistoryRow
{
    double amount;
    u64 when;
};

template <typename Row>
ConstSlice
rowSlice(const Row &row)
{
    return ConstSlice(&row, sizeof(row));
}

template <typename Row>
StatusOr<Row>
readRow(Database *db, const std::string &table, i64 key)
{
    StatusOr<std::vector<u8>> raw = db->get(table, key);
    if (!raw.isOk())
        return raw.status();
    if (raw->size() != sizeof(Row))
        return Status::corruption("row size mismatch in " + table);
    Row row;
    std::memcpy(&row, raw->data(), sizeof(row));
    return row;
}

Status
load(Database *db, const TpccConfig &config, Rng *rng)
{
    for (const char *table :
         {"warehouse", "district", "customer", "item", "stock", "orders",
          "order_line", "history"})
        MGSP_RETURN_IF_ERROR(db->createTable(table));

    MGSP_RETURN_IF_ERROR(db->begin());
    for (u32 i = 1; i <= config.items; ++i) {
        ItemRow item{};
        item.price = 1.0 + static_cast<double>(rng->nextBelow(9900)) / 100;
        std::snprintf(item.name, sizeof(item.name), "item-%u", i);
        MGSP_RETURN_IF_ERROR(db->insert("item", i, rowSlice(item)));
    }
    for (u32 w = 1; w <= config.warehouses; ++w) {
        WarehouseRow warehouse{};
        warehouse.ytd = 0;
        std::snprintf(warehouse.name, sizeof(warehouse.name), "w-%u", w);
        MGSP_RETURN_IF_ERROR(
            db->insert("warehouse", w, rowSlice(warehouse)));
        for (u32 i = 1; i <= config.items; ++i) {
            StockRow stock{};
            stock.quantity = 50 + static_cast<i32>(rng->nextBelow(50));
            MGSP_RETURN_IF_ERROR(
                db->insert("stock", stockKey(w, i), rowSlice(stock)));
        }
        for (u32 d = 1; d <= config.districtsPerWarehouse; ++d) {
            DistrictRow district{};
            district.ytd = 0;
            district.nextOrderId = 1;
            std::snprintf(district.name, sizeof(district.name), "d-%u-%u",
                          w, d);
            MGSP_RETURN_IF_ERROR(db->insert("district", districtKey(w, d),
                                            rowSlice(district)));
            for (u32 c = 1; c <= config.customersPerDistrict; ++c) {
                CustomerRow customer{};
                customer.balance = -10.0;
                rng->fillBytes(customer.data, sizeof(customer.data));
                MGSP_RETURN_IF_ERROR(
                    db->insert("customer", customerKey(w, d, c),
                               rowSlice(customer)));
            }
        }
    }
    MGSP_RETURN_IF_ERROR(db->commit());
    return db->checkpoint();
}

/** The New-Order transaction (TPC-C §2.4), simplified. */
Status
newOrder(Database *db, const TpccConfig &config, Rng *rng, double *amount)
{
    const u32 w = 1 + static_cast<u32>(rng->nextBelow(config.warehouses));
    const u32 d = 1 + static_cast<u32>(
                          rng->nextBelow(config.districtsPerWarehouse));
    const u32 c = 1 + static_cast<u32>(
                          rng->nextBelow(config.customersPerDistrict));
    const u32 lines = 5 + static_cast<u32>(rng->nextBelow(11));

    MGSP_RETURN_IF_ERROR(db->begin());
    StatusOr<DistrictRow> district =
        readRow<DistrictRow>(db, "district", districtKey(w, d));
    if (!district.isOk())
        return district.status();
    const u64 order_id = district->nextOrderId;
    district->nextOrderId++;
    MGSP_RETURN_IF_ERROR(db->update("district", districtKey(w, d),
                                    rowSlice(*district)));

    OrderRow order{};
    order.customer = c;
    order.lineCount = lines;
    order.entryNanos = 0;
    MGSP_RETURN_IF_ERROR(
        db->insert("orders", orderKey(w, d, order_id), rowSlice(order)));

    double total = 0;
    for (u32 line = 0; line < lines; ++line) {
        const u32 item_id =
            1 + static_cast<u32>(rng->nextZipf(config.items, 0.4));
        StatusOr<ItemRow> item = readRow<ItemRow>(db, "item", item_id);
        if (!item.isOk())
            return item.status();
        StatusOr<StockRow> stock =
            readRow<StockRow>(db, "stock", stockKey(w, item_id));
        if (!stock.isOk())
            return stock.status();
        const u32 qty = 1 + static_cast<u32>(rng->nextBelow(10));
        stock->quantity -= static_cast<i32>(qty);
        if (stock->quantity < 10)
            stock->quantity += 91;
        stock->orderCount++;
        MGSP_RETURN_IF_ERROR(db->update("stock", stockKey(w, item_id),
                                        rowSlice(*stock)));
        OrderLineRow order_line{};
        order_line.item = item_id;
        order_line.quantity = qty;
        order_line.amount = item->price * qty;
        total += order_line.amount;
        MGSP_RETURN_IF_ERROR(
            db->insert("order_line",
                       orderLineKey(w, d, order_id, line),
                       rowSlice(order_line)));
    }
    *amount = total;
    return db->commit();
}

/** The Payment transaction (TPC-C §2.5), simplified. */
Status
payment(Database *db, const TpccConfig &config, Rng *rng, u64 txn_id,
        double *paid)
{
    const u32 w = 1 + static_cast<u32>(rng->nextBelow(config.warehouses));
    const u32 d = 1 + static_cast<u32>(
                          rng->nextBelow(config.districtsPerWarehouse));
    const u32 c = 1 + static_cast<u32>(
                          rng->nextBelow(config.customersPerDistrict));
    const double amount =
        1.0 + static_cast<double>(rng->nextBelow(499900)) / 100;

    MGSP_RETURN_IF_ERROR(db->begin());
    StatusOr<WarehouseRow> warehouse =
        readRow<WarehouseRow>(db, "warehouse", w);
    if (!warehouse.isOk())
        return warehouse.status();
    warehouse->ytd += amount;
    MGSP_RETURN_IF_ERROR(
        db->update("warehouse", w, rowSlice(*warehouse)));

    StatusOr<DistrictRow> district =
        readRow<DistrictRow>(db, "district", districtKey(w, d));
    if (!district.isOk())
        return district.status();
    district->ytd += amount;
    MGSP_RETURN_IF_ERROR(db->update("district", districtKey(w, d),
                                    rowSlice(*district)));

    StatusOr<CustomerRow> customer =
        readRow<CustomerRow>(db, "customer", customerKey(w, d, c));
    if (!customer.isOk())
        return customer.status();
    customer->balance -= amount;
    customer->ytdPayment += amount;
    customer->paymentCount++;
    MGSP_RETURN_IF_ERROR(db->update("customer", customerKey(w, d, c),
                                    rowSlice(*customer)));

    HistoryRow history{};
    history.amount = amount;
    history.when = txn_id;
    MGSP_RETURN_IF_ERROR(db->insert(
        "history", static_cast<i64>(txn_id), rowSlice(history)));
    *paid = amount;
    return db->commit();
}

/** The Order-Status read-only transaction (TPC-C §2.6). */
Status
orderStatus(Database *db, const TpccConfig &config, Rng *rng)
{
    const u32 w = 1 + static_cast<u32>(rng->nextBelow(config.warehouses));
    const u32 d = 1 + static_cast<u32>(
                          rng->nextBelow(config.districtsPerWarehouse));
    const u32 c = 1 + static_cast<u32>(
                          rng->nextBelow(config.customersPerDistrict));
    StatusOr<CustomerRow> customer =
        readRow<CustomerRow>(db, "customer", customerKey(w, d, c));
    if (!customer.isOk())
        return customer.status();
    // Scan this district's most recent orders.
    u64 seen = 0;
    return db->scan("orders", orderKey(w, d, 0),
                    orderKey(w, d, 9999999),
                    [&](i64, ConstSlice) { return ++seen < 20; });
}

}  // namespace

StatusOr<TpccResult>
runTpcc(FileSystem *fs, const TpccConfig &config)
{
    minidb::DbOptions options;
    options.journal = config.journal;
    options.fileCapacity = config.fileCapacity;
    StatusOr<std::unique_ptr<Database>> db =
        Database::open(fs, "tpcc.db", options);
    if (!db.isOk())
        return db.status();
    Rng rng(config.seed);
    MGSP_RETURN_IF_ERROR(load(db->get(), config, &rng));

    TpccResult result;
    double total_paid = 0;
    Stopwatch timer;
    for (u64 t = 0; t < config.transactions; ++t) {
        const u64 dice = rng.nextBelow(100);
        if (dice < 45) {
            double amount = 0;
            MGSP_RETURN_IF_ERROR(
                newOrder(db->get(), config, &rng, &amount));
            ++result.newOrders;
        } else if (dice < 88) {
            double paid = 0;
            MGSP_RETURN_IF_ERROR(
                payment(db->get(), config, &rng, t, &paid));
            total_paid += paid;
            ++result.payments;
        } else {
            MGSP_RETURN_IF_ERROR(orderStatus(db->get(), config, &rng));
            ++result.orderStatuses;
        }
    }
    result.seconds = timer.elapsedSeconds();

    // Money conservation: sum of warehouse YTD == sum of payments.
    double ytd_total = 0;
    for (u32 w = 1; w <= config.warehouses; ++w) {
        StatusOr<WarehouseRow> warehouse =
            readRow<WarehouseRow>(db->get(), "warehouse", w);
        if (!warehouse.isOk())
            return warehouse.status();
        ytd_total += warehouse->ytd;
    }
    if (ytd_total < total_paid - 0.01 || ytd_total > total_paid + 0.01)
        return Status::internal("TPC-C money conservation violated");
    return result;
}

}  // namespace mgsp
