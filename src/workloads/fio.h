/**
 * @file
 * FIO-style microbenchmark runner: the workload generator behind the
 * paper's Figs. 1 and 7-10 and Table II. Mirrors the artifact's
 * run.sh parameter set:
 *
 *   run.sh fs op fsize bs fsync t_num write_ratio runtime ramptime
 */
#ifndef MGSP_WORKLOADS_FIO_H
#define MGSP_WORKLOADS_FIO_H

#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/types.h"
#include "vfs/vfs.h"

namespace mgsp {

/** What the job does. */
enum class FioOp { Write, Read, Mixed };

/** One FIO job description. */
struct FioConfig
{
    FioOp op = FioOp::Write;
    bool random = false;
    u64 fileSize = 64 * MiB;
    u64 blockSize = 4 * KiB;
    /** Call sync() every N operations; 0 = never. */
    u32 fsyncInterval = 1;
    u32 threads = 1;
    /** Mixed mode: fraction of writes. */
    double writeRatio = 0.5;
    u64 runtimeMillis = 1000;
    u64 rampMillis = 100;
    u64 seed = 42;
    /** Pre-write the whole file before measuring (default: yes). */
    bool preallocate = true;
    /** One steady-state pass of blockSize writes before the timer. */
    bool warmup = true;
    /**
     * advise() hint applied to the job file, like fio's fadvise_hint
     * option. Engines without a cache ignore it.
     */
    AccessHint accessHint = AccessHint::Normal;
};

/** Aggregate result of a job. */
struct FioResult
{
    u64 ops = 0;
    u64 bytes = 0;
    double seconds = 0;
    Histogram latency;

    double
    throughputMiBps() const
    {
        return seconds > 0
                   ? static_cast<double>(bytes) / MiB / seconds
                   : 0.0;
    }
    double
    opsPerSecond() const
    {
        return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
    }
};

/**
 * Opens (creating if missing) @p path with a fixed capacity on
 * engines that need one (MGSP/Ext4/Libnvmmio/NOVA models) or plainly
 * elsewhere.
 */
StatusOr<std::unique_ptr<File>>
openWithCapacity(FileSystem *fs, const std::string &path,
                       u64 capacity);

/**
 * Runs one FIO job against @p fs. Creates (or reuses) "fio.dat";
 * each thread opens its own handle, as fio does with one job per
 * thread.
 */
StatusOr<FioResult> runFio(FileSystem *fs, const FioConfig &config);

}  // namespace mgsp

#endif  // MGSP_WORKLOADS_FIO_H
