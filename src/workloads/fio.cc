#include "workloads/fio.h"

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/ext_fs.h"
#include "baselines/nova_fs.h"
#include "baselines/nvmmio_fs.h"
#include "common/clock.h"
#include "common/random.h"
#include "mgsp/mgsp_fs.h"

namespace mgsp {

StatusOr<std::unique_ptr<File>>
openWithCapacity(FileSystem *fs, const std::string &path,
                       u64 capacity)
{
    // vfs v2: capacity rides in OpenOptions, so no engine-specific
    // side doors are needed; non-exclusive create re-opens an
    // existing file.
    return fs->open(path, OpenOptions::Create(capacity, false));
}

namespace {

/** Pre-writes the file so measured writes are overwrites. */
Status
preallocate(File *file, u64 file_size)
{
    std::vector<u8> chunk(1 * MiB, 0x5F);
    for (u64 off = 0; off < file_size; off += chunk.size()) {
        const u64 len = std::min<u64>(chunk.size(), file_size - off);
        MGSP_RETURN_IF_ERROR(
            file->pwrite(off, ConstSlice(chunk.data(), len)));
    }
    return file->sync();
}

/** Per-thread job loop. */
void
workerLoop(File *file, const FioConfig &config, u32 tid,
           const std::atomic<bool> &stop,
           const std::atomic<bool> &recording, FioResult *result)
{
    Rng rng(config.seed * 1315423911u + tid);
    std::vector<u8> buffer(config.blockSize);
    rng.fillBytes(buffer.data(), buffer.size());
    const u64 blocks = config.fileSize / config.blockSize;
    // Sequential mode: each thread sweeps its own stripe, as fio
    // does with per-job offsets.
    const u64 stripe = blocks / config.threads;
    u64 cursor = (tid * stripe) % blocks;
    u64 since_sync = 0;

    while (!stop.load(std::memory_order_relaxed)) {
        u64 block;
        if (config.random) {
            block = rng.nextBelow(blocks);
        } else {
            block = cursor;
            cursor = (cursor + 1) % blocks;
        }
        const u64 off = block * config.blockSize;
        bool is_write = config.op == FioOp::Write;
        if (config.op == FioOp::Mixed)
            is_write = rng.nextBool(config.writeRatio);

        const u64 start = monotonicNanos();
        if (is_write) {
            Status s = file->pwrite(
                off, ConstSlice(buffer.data(), buffer.size()));
            if (!s.isOk())
                break;
            if (config.fsyncInterval > 0 &&
                ++since_sync >= config.fsyncInterval) {
                since_sync = 0;
                if (!file->sync().isOk())
                    break;
            }
        } else {
            StatusOr<u64> n = file->pread(
                off, MutSlice(buffer.data(), buffer.size()));
            if (!n.isOk())
                break;
        }
        const u64 elapsed = monotonicNanos() - start;
        if (recording.load(std::memory_order_relaxed)) {
            ++result->ops;
            result->bytes += config.blockSize;
            result->latency.record(elapsed);
        }
    }
}

}  // namespace

StatusOr<FioResult>
runFio(FileSystem *fs, const FioConfig &config)
{
    if (config.blockSize == 0 || config.fileSize < config.blockSize ||
        config.threads == 0)
        return Status::invalidArgument("bad fio configuration");

    // One handle per thread (as the paper's multi-thread runs do).
    std::vector<std::unique_ptr<File>> handles;
    {
        StatusOr<std::unique_ptr<File>> first =
            openWithCapacity(fs, "fio.dat", config.fileSize);
        if (!first.isOk())
            return first.status();
        if (config.preallocate)
            MGSP_RETURN_IF_ERROR(
                preallocate(first->get(), config.fileSize));
        if (config.accessHint != AccessHint::Normal)
            MGSP_RETURN_IF_ERROR(
                (*first)->advise(config.accessHint));
        handles.push_back(std::move(*first));
    }
    for (u32 t = 1; t < config.threads; ++t) {
        StatusOr<std::unique_ptr<File>> handle =
            fs->open("fio.dat", OpenOptions{});
        if (!handle.isOk())
            return handle.status();
        handles.push_back(std::move(*handle));
    }

    // Warmup: one sequential pass so engines with first-touch costs
    // (shadow-log/log-block allocation, CoW page faults, read-cache
    // fills) reach steady state before the timer starts — the paper's
    // runs measure "after the performance is stable". Read jobs warm
    // with reads: a write pass would measure nothing a read job
    // exercises, while a read pass primes exactly the structures
    // (and any advised cache) the measured window will touch.
    if (config.warmup) {
        std::vector<u8> warm(config.blockSize, 0xA7);
        if (config.op == FioOp::Read) {
            for (u64 off = 0; off + config.blockSize <= config.fileSize;
                 off += config.blockSize) {
                StatusOr<u64> got = handles[0]->pread(
                    off, MutSlice(warm.data(), warm.size()));
                if (!got.isOk())
                    return got.status();
            }
        } else {
            for (u64 off = 0; off + config.blockSize <= config.fileSize;
                 off += config.blockSize) {
                MGSP_RETURN_IF_ERROR(handles[0]->pwrite(
                    off, ConstSlice(warm.data(), warm.size())));
            }
            MGSP_RETURN_IF_ERROR(handles[0]->sync());
        }
    }

    std::atomic<bool> stop{false};
    std::atomic<bool> recording{false};
    std::vector<FioResult> partials(config.threads);
    std::vector<std::thread> threads;
    threads.reserve(config.threads);
    for (u32 t = 0; t < config.threads; ++t) {
        threads.emplace_back(workerLoop, handles[t].get(),
                             std::cref(config), t, std::cref(stop),
                             std::cref(recording), &partials[t]);
    }

    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.rampMillis));
    recording.store(true);
    const u64 begin = monotonicNanos();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.runtimeMillis));
    recording.store(false);
    const u64 end = monotonicNanos();
    stop.store(true);
    for (std::thread &th : threads)
        th.join();

    FioResult total;
    total.seconds = static_cast<double>(end - begin) * 1e-9;
    for (const FioResult &part : partials) {
        total.ops += part.ops;
        total.bytes += part.bytes;
        total.latency.merge(part.latency);
    }
    return total;
}

}  // namespace mgsp
