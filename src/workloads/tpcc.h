/**
 * @file
 * Simplified TPC-C driver on minidb (paper Fig. 12).
 *
 * Implements the two transaction profiles that dominate the standard
 * mix — New-Order (45 %) and Payment (43 %) — plus the read-only
 * Order-Status (12 %) against the classic warehouse/district/
 * customer/item/stock/orders/order-line/history schema, scaled down
 * to run in seconds. Composite primary keys are packed into 64-bit
 * integers (minidb's key type).
 *
 * What matters for the paper's figure is the I/O shape: multi-page
 * transactions commit through the database's journal mode, so the
 * underlying file system's sync cost dominates throughput.
 */
#ifndef MGSP_WORKLOADS_TPCC_H
#define MGSP_WORKLOADS_TPCC_H

#include "common/status.h"
#include "common/types.h"
#include "minidb/db.h"

namespace mgsp {

/** Scale and mix parameters. */
struct TpccConfig
{
    minidb::JournalMode journal = minidb::JournalMode::Wal;
    u32 warehouses = 1;
    u32 districtsPerWarehouse = 10;
    u32 customersPerDistrict = 100;  ///< spec: 3000; scaled down
    u32 items = 1000;                ///< spec: 100000; scaled down
    u64 transactions = 1000;
    u64 seed = 99;
    /** Capacity of the db/-wal files on extent-based engines. */
    u64 fileCapacity = 32 * MiB;
};

/** Result of a run. */
struct TpccResult
{
    u64 newOrders = 0;
    u64 payments = 0;
    u64 orderStatuses = 0;
    double seconds = 0;

    /** New-order transactions per minute (the TpmC metric). */
    double
    tpmC() const
    {
        return seconds > 0
                   ? static_cast<double>(newOrders) * 60.0 / seconds
                   : 0.0;
    }
    double
    totalTps() const
    {
        return seconds > 0 ? static_cast<double>(newOrders + payments +
                                                 orderStatuses) /
                                 seconds
                           : 0.0;
    }
};

/**
 * Loads the schema + initial population on a fresh database on
 * @p fs, runs the transaction mix, and verifies the money-conservation
 * invariant (warehouse YTD = sum of payment amounts) before
 * returning.
 */
StatusOr<TpccResult> runTpcc(FileSystem *fs, const TpccConfig &config);

}  // namespace mgsp

#endif  // MGSP_WORKLOADS_TPCC_H
