#include "minidb/wal.h"

#include <cstring>

#include "common/checksum.h"
#include "common/logging.h"

namespace mgsp::minidb {

Wal::Wal(File *file, u64 checkpoint_frames)
    : file_(file), checkpointFrames_(checkpoint_frames)
{
}

u64
Wal::frameChecksum(const FrameHeader &header, const u8 *payload)
{
    u64 crc = crc64(&header, offsetof(FrameHeader, checksum));
    return crc64(payload, kPageSize, crc);
}

Status
Wal::initialize()
{
    salt_ = 0x5A17C0DE;
    frameCount_ = 0;
    overlay_.clear();
    WalHeader header{};
    header.magic = WalHeader::kMagic;
    header.salt = salt_;
    MGSP_RETURN_IF_ERROR(file_->truncate(0));
    MGSP_RETURN_IF_ERROR(
        file_->pwrite(0, ConstSlice(&header, sizeof(header))));
    return file_->sync();
}

Status
Wal::recover(u64 *committed_frames_out)
{
    overlay_.clear();
    frameCount_ = 0;
    WalHeader header{};
    StatusOr<u64> n = file_->pread(0, MutSlice(&header, sizeof(header)));
    if (!n.isOk())
        return n.status();
    if (*n < sizeof(header) || header.magic != WalHeader::kMagic) {
        // No usable WAL: start fresh.
        return initialize();
    }
    salt_ = header.salt;

    // Scan frames; collect a transaction's frames and apply them only
    // when its commit frame validates.
    u64 committed = 0;
    std::vector<std::pair<PageNo, std::shared_ptr<std::vector<u8>>>>
        pending;
    for (u64 frame = 0;; ++frame) {
        FrameHeader fh{};
        std::vector<u8> payload(kPageSize);
        StatusOr<u64> read_header = file_->pread(
            frameOffset(frame), MutSlice(&fh, sizeof(fh)));
        if (!read_header.isOk() || *read_header < sizeof(fh))
            break;
        StatusOr<u64> read_payload =
            file_->pread(frameOffset(frame) + sizeof(fh),
                         MutSlice(payload.data(), kPageSize));
        if (!read_payload.isOk() || *read_payload < kPageSize)
            break;
        if (fh.salt != salt_ ||
            fh.checksum != frameChecksum(fh, payload.data()))
            break;  // torn or stale frame: the log ends here
        pending.emplace_back(
            fh.pageNo,
            std::make_shared<std::vector<u8>>(std::move(payload)));
        frameCount_ = frame + 1;
        if (fh.dbSizeAfterCommit != 0) {
            for (auto &[page, data] : pending)
                overlay_[page] = std::move(data);
            pending.clear();
            dbPageCount_ = fh.dbSizeAfterCommit;
            ++committed;
        }
    }
    // Uncommitted trailing frames are discarded (pending dropped) but
    // keep frameCount_ pointing past them only if they were valid —
    // simpler to reset to the last committed boundary:
    if (!pending.empty())
        frameCount_ -= pending.size();
    if (committed_frames_out != nullptr)
        *committed_frames_out = committed;
    return Status::ok();
}

Status
Wal::commit(const std::vector<const Page *> &pages, u32 db_page_count)
{
    MGSP_CHECK(!pages.empty());
    std::vector<u8> buffer(pages.size() * kFrameBytes);
    u64 cursor = 0;
    for (std::size_t i = 0; i < pages.size(); ++i) {
        FrameHeader fh{};
        fh.pageNo = pages[i]->number;
        fh.dbSizeAfterCommit =
            (i + 1 == pages.size()) ? db_page_count : 0;
        fh.salt = salt_;
        fh.checksum = frameChecksum(fh, pages[i]->data.data());
        std::memcpy(buffer.data() + cursor, &fh, sizeof(fh));
        std::memcpy(buffer.data() + cursor + sizeof(fh),
                    pages[i]->data.data(), kPageSize);
        cursor += kFrameBytes;
    }
    // One sequential append + one fsync per transaction.
    MGSP_RETURN_IF_ERROR(file_->pwrite(
        frameOffset(frameCount_), ConstSlice(buffer.data(),
                                             buffer.size())));
    MGSP_RETURN_IF_ERROR(file_->sync());
    for (const Page *page : pages) {
        auto payload = std::make_shared<std::vector<u8>>(
            page->data.begin(), page->data.end());
        overlay_[page->number] = std::move(payload);
    }
    frameCount_ += pages.size();
    dbPageCount_ = db_page_count;
    return Status::ok();
}

StatusOr<std::vector<PageNo>>
Wal::checkpoint(File *db_file)
{
    std::vector<PageNo> pages;
    pages.reserve(overlay_.size());
    for (const auto &[page, payload] : overlay_) {
        MGSP_RETURN_IF_ERROR(db_file->pwrite(
            u64(page) * kPageSize,
            ConstSlice(payload->data(), kPageSize)));
        pages.push_back(page);
    }
    MGSP_RETURN_IF_ERROR(db_file->sync());
    overlay_.clear();
    // Reset the WAL with a new salt so stale frames never replay.
    ++salt_;
    frameCount_ = 0;
    WalHeader header{};
    header.magic = WalHeader::kMagic;
    header.salt = salt_;
    MGSP_RETURN_IF_ERROR(file_->truncate(0));
    MGSP_RETURN_IF_ERROR(
        file_->pwrite(0, ConstSlice(&header, sizeof(header))));
    MGSP_RETURN_IF_ERROR(file_->sync());
    return pages;
}

}  // namespace mgsp::minidb
