#include "minidb/btree.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"

namespace mgsp::minidb {
namespace {

constexpr u8 kLeaf = 1;
constexpr u8 kInterior = 2;
constexpr u64 kHeaderSize = 16;

/** Shared page header (16 bytes at offset 0). */
struct PageHeader
{
    u8 type;
    u8 pad0;
    u16 count;
    u16 heapStart;  ///< leaf only: lowest offset used by cell payloads
    u16 pad1;
    u32 rightMost;  ///< interior: rightmost child; leaf: right sibling
    u32 pad2;
};
static_assert(sizeof(PageHeader) == kHeaderSize);

/** Leaf slot (12 bytes, packed: slots sit at unaligned offsets). */
struct __attribute__((packed)) LeafSlot
{
    i64 key;
    u16 offset;
    u16 len;
};
static_assert(sizeof(LeafSlot) == 12);

/** Interior cell (12 bytes, packed manually to avoid padding). */
constexpr u64 kInteriorCell = 12;

PageHeader *
header(Page *page)
{
    return reinterpret_cast<PageHeader *>(page->data.data());
}

const PageHeader *
header(const Page *page)
{
    return reinterpret_cast<const PageHeader *>(page->data.data());
}

LeafSlot *
leafSlots(Page *page)
{
    return reinterpret_cast<LeafSlot *>(page->data.data() + kHeaderSize);
}

const LeafSlot *
leafSlots(const Page *page)
{
    return reinterpret_cast<const LeafSlot *>(page->data.data() +
                                              kHeaderSize);
}

i64
interiorKey(const Page *page, u16 idx)
{
    i64 key;
    std::memcpy(&key,
                page->data.data() + kHeaderSize + idx * kInteriorCell, 8);
    return key;
}

u32
interiorChild(const Page *page, u16 idx)
{
    u32 child;
    std::memcpy(&child,
                page->data.data() + kHeaderSize + idx * kInteriorCell + 8,
                4);
    return child;
}

void
setInteriorCell(Page *page, u16 idx, i64 key, u32 child)
{
    std::memcpy(page->data.data() + kHeaderSize + idx * kInteriorCell,
                &key, 8);
    std::memcpy(page->data.data() + kHeaderSize + idx * kInteriorCell + 8,
                &child, 4);
}

/** Binary search: first slot with key >= @p key. */
u16
leafLowerBound(const Page *page, i64 key)
{
    const LeafSlot *slots = leafSlots(page);
    u16 lo = 0, hi = header(page)->count;
    while (lo < hi) {
        const u16 mid = (lo + hi) / 2;
        if (slots[mid].key < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/** Child index an interior page routes @p key to. */
u16
interiorChildIndex(const Page *page, i64 key)
{
    u16 lo = 0, hi = header(page)->count;
    while (lo < hi) {
        const u16 mid = (lo + hi) / 2;
        if (interiorKey(page, mid) <= key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;  // == count means rightMost
}

u32
routedChild(const Page *page, u16 idx)
{
    return idx == header(page)->count ? header(page)->rightMost
                                      : interiorChild(page, idx);
}

u64
leafFreeSpace(const Page *page)
{
    const PageHeader *h = header(page);
    const u64 slots_end = kHeaderSize + u64(h->count) * sizeof(LeafSlot);
    return h->heapStart > slots_end ? h->heapStart - slots_end : 0;
}

void
initLeaf(Page *page)
{
    page->data.fill(0);
    PageHeader *h = header(page);
    h->type = kLeaf;
    h->count = 0;
    h->heapStart = static_cast<u16>(kPageSize);
    h->rightMost = kNoPage;
}

/**
 * Rewrites a leaf's payloads compactly at the page tail, dropping
 * dead fragments left by deletes and in-place growth.
 */
void
compactLeaf(Page *page)
{
    PageHeader *h = header(page);
    std::array<u8, kPageSize> scratch;
    u16 heap = static_cast<u16>(kPageSize);
    LeafSlot *slots = leafSlots(page);
    for (u16 i = 0; i < h->count; ++i) {
        heap = static_cast<u16>(heap - slots[i].len);
        std::memcpy(scratch.data() + heap,
                    page->data.data() + slots[i].offset, slots[i].len);
        slots[i].offset = heap;
    }
    std::memcpy(page->data.data() + heap, scratch.data() + heap,
                kPageSize - heap);
    h->heapStart = heap;
}

/** Inserts a cell at slot @p idx; caller guarantees space. */
void
leafInsertAt(Page *page, u16 idx, i64 key, ConstSlice value)
{
    PageHeader *h = header(page);
    LeafSlot *slots = leafSlots(page);
    std::memmove(slots + idx + 1, slots + idx,
                 sizeof(LeafSlot) * (h->count - idx));
    h->heapStart = static_cast<u16>(h->heapStart - value.size());
    std::memcpy(page->data.data() + h->heapStart, value.data(),
                value.size());
    slots[idx].key = key;
    slots[idx].offset = h->heapStart;
    slots[idx].len = static_cast<u16>(value.size());
    ++h->count;
}

void
leafRemoveAt(Page *page, u16 idx)
{
    PageHeader *h = header(page);
    LeafSlot *slots = leafSlots(page);
    std::memmove(slots + idx, slots + idx + 1,
                 sizeof(LeafSlot) * (h->count - idx - 1));
    --h->count;
    // The payload fragment stays until the next compaction.
}

}  // namespace

StatusOr<PageNo>
BTree::create(Pager *pager)
{
    StatusOr<PageNo> page_no = pager->allocPage();
    if (!page_no.isOk())
        return page_no;
    StatusOr<Page *> page = pager->getPageWritable(*page_no);
    if (!page.isOk())
        return page.status();
    initLeaf(*page);
    return *page_no;
}

StatusOr<PageNo>
BTree::findLeaf(i64 key)
{
    PageNo current = root_;
    for (;;) {
        StatusOr<Page *> page = pager_->getPage(current);
        if (!page.isOk())
            return page.status();
        if (header(*page)->type == kLeaf)
            return current;
        current = routedChild(*page, interiorChildIndex(*page, key));
        if (current == kNoPage)
            return Status::corruption("btree: null child link");
    }
}

StatusOr<std::vector<u8>>
BTree::get(i64 key)
{
    StatusOr<PageNo> leaf_no = findLeaf(key);
    if (!leaf_no.isOk())
        return leaf_no.status();
    StatusOr<Page *> leaf = pager_->getPage(*leaf_no);
    if (!leaf.isOk())
        return leaf.status();
    const u16 idx = leafLowerBound(*leaf, key);
    const LeafSlot *slots = leafSlots(*leaf);
    if (idx >= header(*leaf)->count || slots[idx].key != key)
        return Status::notFound("key not in btree");
    const u8 *payload = (*leaf)->data.data() + slots[idx].offset;
    return std::vector<u8>(payload, payload + slots[idx].len);
}

bool
BTree::contains(i64 key)
{
    StatusOr<std::vector<u8>> v = get(key);
    return v.isOk();
}

Status
BTree::put(i64 key, ConstSlice value)
{
    if (value.size() > kMaxValueSize)
        return Status::invalidArgument("value exceeds kMaxValueSize");
    std::optional<SplitResult> split;
    MGSP_RETURN_IF_ERROR(putRec(root_, key, value, &split));
    if (split.has_value()) {
        // Grow a new root above the old one.
        StatusOr<PageNo> new_root_no = pager_->allocPage();
        if (!new_root_no.isOk())
            return new_root_no.status();
        StatusOr<Page *> new_root = pager_->getPageWritable(*new_root_no);
        if (!new_root.isOk())
            return new_root.status();
        (*new_root)->data.fill(0);
        PageHeader *h = header(*new_root);
        h->type = kInterior;
        h->count = 1;
        h->rightMost = split->right;
        setInteriorCell(*new_root, 0, split->separator, root_);
        root_ = *new_root_no;
    }
    return Status::ok();
}

Status
BTree::putRec(PageNo page_no, i64 key, ConstSlice value,
              std::optional<SplitResult> *split)
{
    StatusOr<Page *> page_or = pager_->getPageWritable(page_no);
    if (!page_or.isOk())
        return page_or.status();
    Page *page = *page_or;

    if (header(page)->type == kInterior) {
        const u16 route = interiorChildIndex(page, key);
        const PageNo child = routedChild(page, route);
        std::optional<SplitResult> child_split;
        MGSP_RETURN_IF_ERROR(putRec(child, key, value, &child_split));
        if (!child_split.has_value())
            return Status::ok();
        // Insert the separator + new right child after `route`.
        PageHeader *h = header(page);
        const u64 max_cells = (kPageSize - kHeaderSize) / kInteriorCell;
        // Shift cells right of the route point.
        for (u16 i = h->count; i > route; --i)
            setInteriorCell(page, i, interiorKey(page, i - 1),
                            interiorChild(page, i - 1));
        if (route == h->count) {
            setInteriorCell(page, route, child_split->separator,
                            h->rightMost);
            h->rightMost = child_split->right;
        } else {
            setInteriorCell(page, route, child_split->separator, child);
            // The displaced cell (now at route+1) keeps its key but
            // must point to the new right sibling.
            setInteriorCell(page, route + 1, interiorKey(page, route + 1),
                            child_split->right);
        }
        ++h->count;
        if (h->count < max_cells)
            return Status::ok();

        // Split this interior page: median key moves up.
        StatusOr<PageNo> right_no = pager_->allocPage();
        if (!right_no.isOk())
            return right_no.status();
        StatusOr<Page *> right_or = pager_->getPageWritable(*right_no);
        if (!right_or.isOk())
            return right_or.status();
        // allocPage may relocate the cache entry; re-fetch left.
        page_or = pager_->getPageWritable(page_no);
        if (!page_or.isOk())
            return page_or.status();
        page = *page_or;
        h = header(page);
        Page *right = *right_or;
        right->data.fill(0);
        PageHeader *rh = header(right);
        rh->type = kInterior;
        const u16 mid = h->count / 2;
        const i64 up_key = interiorKey(page, mid);
        rh->count = static_cast<u16>(h->count - mid - 1);
        for (u16 i = 0; i < rh->count; ++i)
            setInteriorCell(right, i, interiorKey(page, mid + 1 + i),
                            interiorChild(page, mid + 1 + i));
        rh->rightMost = h->rightMost;
        h->rightMost = interiorChild(page, mid);
        h->count = mid;
        *split = SplitResult{up_key, *right_no};
        return Status::ok();
    }

    // Leaf.
    u16 idx = leafLowerBound(page, key);
    PageHeader *h = header(page);
    LeafSlot *slots = leafSlots(page);
    if (idx < h->count && slots[idx].key == key) {
        // Replace. In place if it fits the old cell, else re-add.
        if (value.size() <= slots[idx].len) {
            std::memcpy(page->data.data() + slots[idx].offset,
                        value.data(), value.size());
            slots[idx].len = static_cast<u16>(value.size());
            return Status::ok();
        }
        leafRemoveAt(page, idx);
        // fall through to insertion
    }
    const u64 needed = sizeof(LeafSlot) + value.size();
    if (leafFreeSpace(page) < needed) {
        compactLeaf(page);
    }
    if (leafFreeSpace(page) >= needed) {
        leafInsertAt(page, idx, key, value);
        return Status::ok();
    }

    // Split the leaf.
    StatusOr<PageNo> right_no = pager_->allocPage();
    if (!right_no.isOk())
        return right_no.status();
    StatusOr<Page *> right_or = pager_->getPageWritable(*right_no);
    if (!right_or.isOk())
        return right_or.status();
    page_or = pager_->getPageWritable(page_no);
    if (!page_or.isOk())
        return page_or.status();
    page = *page_or;
    h = header(page);
    slots = leafSlots(page);
    Page *right = *right_or;
    initLeaf(right);
    PageHeader *rh = header(right);
    // Byte-balanced split point: both halves keep room for one more
    // maximum-size cell (see kMaxValueSize).
    u64 total_payload = 0;
    for (u16 i = 0; i < h->count; ++i)
        total_payload += slots[i].len;
    u16 mid = 1;
    u64 cum = slots[0].len;
    while (mid < h->count - 1 && cum < total_payload / 2)
        cum += slots[mid++].len;
    for (u16 i = mid; i < h->count; ++i) {
        leafInsertAt(right, static_cast<u16>(i - mid), slots[i].key,
                     ConstSlice(page->data.data() + slots[i].offset,
                                slots[i].len));
    }
    rh->rightMost = h->rightMost;
    h->rightMost = *right_no;
    h->count = mid;
    compactLeaf(page);
    const i64 sep = leafSlots(right)[0].key;
    // Insert into the proper half.
    Page *target = key < sep ? page : right;
    idx = leafLowerBound(target, key);
    if (leafFreeSpace(target) < needed)
        compactLeaf(target);
    MGSP_CHECK(leafFreeSpace(target) >= needed);
    leafInsertAt(target, idx, key, value);
    *split = SplitResult{sep, *right_no};
    return Status::ok();
}

Status
BTree::erase(i64 key)
{
    StatusOr<PageNo> leaf_no = findLeaf(key);
    if (!leaf_no.isOk())
        return leaf_no.status();
    StatusOr<Page *> leaf = pager_->getPageWritable(*leaf_no);
    if (!leaf.isOk())
        return leaf.status();
    const u16 idx = leafLowerBound(*leaf, key);
    if (idx >= header(*leaf)->count || leafSlots(*leaf)[idx].key != key)
        return Status::notFound("key not in btree");
    leafRemoveAt(*leaf, idx);
    return Status::ok();
}

Status
BTree::scanRange(i64 first, i64 last,
                 const std::function<bool(i64, ConstSlice)> &fn)
{
    StatusOr<PageNo> leaf_no = findLeaf(first);
    if (!leaf_no.isOk())
        return leaf_no.status();
    PageNo current = *leaf_no;
    while (current != kNoPage) {
        StatusOr<Page *> leaf = pager_->getPage(current);
        if (!leaf.isOk())
            return leaf.status();
        const PageHeader *h = header(*leaf);
        const LeafSlot *slots = leafSlots(*leaf);
        for (u16 i = leafLowerBound(*leaf, first); i < h->count; ++i) {
            if (slots[i].key > last)
                return Status::ok();
            if (!fn(slots[i].key,
                    ConstSlice((*leaf)->data.data() + slots[i].offset,
                               slots[i].len)))
                return Status::ok();
        }
        current = h->rightMost;
    }
    return Status::ok();
}

StatusOr<u64>
BTree::count()
{
    u64 total = 0;
    MGSP_RETURN_IF_ERROR(scanRange(
        std::numeric_limits<i64>::min(), std::numeric_limits<i64>::max(),
        [&](i64, ConstSlice) {
            ++total;
            return true;
        }));
    return total;
}

}  // namespace mgsp::minidb
