/**
 * @file
 * B+tree of minidb: 64-bit integer keys to variable-length values,
 * stored in 4 KiB pager pages — the row store behind every minidb
 * table (SQLite's table B-tree analogue).
 *
 * Page formats:
 *  - leaf: slotted page; a sorted slot array {key, offset, len} grows
 *    from the header while cell payloads grow from the page tail;
 *    leaves are chained through `rightMost` for scans.
 *  - interior: fixed cells {separatorKey, childPage}; children[i]
 *    holds keys < separatorKey[i]; `rightMost` holds the rest.
 *
 * Inserts split full pages (the root splits by growing a new root);
 * deletes do not rebalance (standard lazy-deletion simplification —
 * pages reclaim space via compaction on reuse). Values are limited
 * to kMaxValueSize; minidb rows stay far below it.
 */
#ifndef MGSP_MINIDB_BTREE_H
#define MGSP_MINIDB_BTREE_H

#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "minidb/pager.h"

namespace mgsp::minidb {

/**
 * Largest value payload a cell may hold. Bounded so that after a
 * byte-balanced leaf split either half always has room for one more
 * maximum-size cell (no overflow pages needed).
 */
inline constexpr u64 kMaxValueSize = 900;

/** See file comment. */
class BTree
{
  public:
    /**
     * Attaches to an existing tree rooted at @p root (use create()
     * for a new one).
     */
    BTree(Pager *pager, PageNo root) : pager_(pager), root_(root) {}

    /** Allocates an empty leaf as a new tree's root. */
    static StatusOr<PageNo> create(Pager *pager);

    /** Current root (callers persist it; splits change it). */
    PageNo root() const { return root_; }

    /** Inserts or replaces @p key. */
    Status put(i64 key, ConstSlice value);

    /** Reads @p key; NotFound if absent. */
    StatusOr<std::vector<u8>> get(i64 key);

    /** Removes @p key; NotFound if absent. */
    Status erase(i64 key);

    /** True iff the key exists. */
    bool contains(i64 key);

    /**
     * In-order scan of [first, last]; the callback returns false to
     * stop early.
     */
    Status scanRange(i64 first, i64 last,
                     const std::function<bool(i64, ConstSlice)> &fn);

    /** Number of keys (full scan; for tests and stats). */
    StatusOr<u64> count();

  private:
    struct SplitResult
    {
        i64 separator;
        PageNo right;
    };

    Status putRec(PageNo page, i64 key, ConstSlice value,
                  std::optional<SplitResult> *split);
    StatusOr<PageNo> findLeaf(i64 key);

    Pager *pager_;
    PageNo root_;
};

}  // namespace mgsp::minidb

#endif  // MGSP_MINIDB_BTREE_H
