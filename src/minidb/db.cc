#include "minidb/db.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "mgsp/mgsp_fs.h"

namespace mgsp::minidb {

namespace {

/** Catalog value: {root page, table name}. */
std::vector<u8>
encodeCatalogEntry(PageNo root, const std::string &name)
{
    std::vector<u8> out(4 + name.size());
    std::memcpy(out.data(), &root, 4);
    std::memcpy(out.data() + 4, name.data(), name.size());
    return out;
}

bool
decodeCatalogEntry(ConstSlice value, PageNo *root, std::string *name)
{
    if (value.size() < 4)
        return false;
    std::memcpy(root, value.data(), 4);
    name->assign(reinterpret_cast<const char *>(value.data()) + 4,
                 value.size() - 4);
    return true;
}

/** Catalog key: name hash, linear-probed on collision. */
i64
catalogBaseKey(const std::string &name)
{
    return static_cast<i64>(hashBytes(name.data(), name.size()) >> 1);
}

/** Opens (creating) a file, using fixed extents on extent FSes. */
StatusOr<std::unique_ptr<File>>
openDbFile(FileSystem *fs, const std::string &path, u64 capacity)
{
    return fs->open(path, OpenOptions::Create(capacity, false));
}

/**
 * JournalMode::Txn commit stamp, living at offset 0 of the -wal
 * companion. Purely diagnostic (the txn layer is the atomicity
 * carrier); it exists to make every commit genuinely cross-file,
 * which is the mode's point.
 */
struct TxnStamp
{
    static constexpr u64 kMagic = 0x4D444254584E3031ull;  // "MDBTXN01"
    u64 magic;
    u64 seq;    ///< commit sequence number
    u64 pages;  ///< dirty pages landed by this commit
    u64 checksum;
};
static_assert(sizeof(TxnStamp) == 32);

}  // namespace

Database::Database(FileSystem *fs, DbOptions options)
    : fs_(fs), options_(options)
{
}

Database::~Database()
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (inTxn_) {
        Status s = rollback();
        if (!s.isOk())
            MGSP_WARN("rollback on close failed: %s",
                      s.toString().c_str());
    }
}

StatusOr<std::unique_ptr<Database>>
Database::open(FileSystem *fs, const std::string &path,
               const DbOptions &options)
{
    std::unique_ptr<Database> db(new Database(fs, options));
    MGSP_RETURN_IF_ERROR(db->bootstrap(path));
    return db;
}

Status
Database::bootstrap(const std::string &path)
{
    const bool existed = fs_->exists(path);
    StatusOr<std::unique_ptr<File>> db_file =
        openDbFile(fs_, path, options_.fileCapacity);
    if (!db_file.isOk())
        return db_file.status();
    dbFile_ = std::move(*db_file);
    // The pager re-reads hot pages far more often than commits rewrite
    // them; let a caching filesystem keep them resident eagerly.
    (void)dbFile_->advise(AccessHint::ReadMostly);

    pager_ = std::make_unique<Pager>(dbFile_.get(), options_.cachePages);

    if (options_.journal == JournalMode::Wal) {
        StatusOr<std::unique_ptr<File>> wal_file =
            openDbFile(fs_, path + "-wal", options_.fileCapacity);
        if (!wal_file.isOk())
            return wal_file.status();
        walFile_ = std::move(*wal_file);
        wal_ = std::make_unique<Wal>(walFile_.get(),
                                     options_.walAutoCheckpointFrames);
    } else if (options_.journal == JournalMode::Txn) {
        // The -wal companion shrinks to a 32-byte commit stamp; the
        // txn layer below carries the atomicity, so there is nothing
        // to recover from it on reopen.
        StatusOr<std::unique_ptr<File>> wal_file =
            openDbFile(fs_, path + "-wal", options_.fileCapacity);
        if (!wal_file.isOk())
            return wal_file.status();
        walFile_ = std::move(*wal_file);
    }

    if (!existed || dbFile_->size() == 0) {
        MGSP_RETURN_IF_ERROR(pager_->initialize());
        if (wal_) {
            MGSP_RETURN_IF_ERROR(wal_->initialize());
            // The WAL index must shadow the db file from the very
            // first commit (reads and rollback both depend on it).
            pager_->setOverlay(&wal_->overlay());
        }
        // Create the catalog tree inside the first transaction.
        MGSP_RETURN_IF_ERROR(begin());
        StatusOr<PageNo> root = BTree::create(pager_.get());
        if (!root.isOk())
            return root.status();
        pager_->header().catalogRoot = *root;
        MGSP_RETURN_IF_ERROR(pager_->flushHeaderToCache());
        catalog_ = std::make_unique<BTree>(pager_.get(), *root);
        return commit();
    }

    if (wal_) {
        MGSP_RETURN_IF_ERROR(wal_->recover());
        pager_->setOverlay(&wal_->overlay());
    }
    MGSP_RETURN_IF_ERROR(pager_->open());
    catalog_ = std::make_unique<BTree>(pager_.get(),
                                       pager_->header().catalogRoot);
    return Status::ok();
}

StatusOr<BTree *>
Database::tableTree(const std::string &name)
{
    auto it = tables_.find(name);
    if (it != tables_.end())
        return it->second.tree.get();
    // Probe the catalog.
    i64 key = catalogBaseKey(name);
    for (int probe = 0; probe < 16; ++probe, ++key) {
        StatusOr<std::vector<u8>> entry = catalog_->get(key);
        if (!entry.isOk()) {
            if (entry.status().code() == StatusCode::NotFound)
                return Status::notFound("no such table: " + name);
            return entry.status();
        }
        PageNo root;
        std::string found;
        if (!decodeCatalogEntry(
                ConstSlice(entry->data(), entry->size()), &root, &found))
            return Status::corruption("bad catalog entry");
        if (found == name) {
            OpenTable table;
            table.tree = std::make_unique<BTree>(pager_.get(), root);
            table.lastPersistedRoot = root;
            table.catalogKey = key;
            auto [pos, inserted] = tables_.emplace(name,
                                                   std::move(table));
            (void)inserted;
            return pos->second.tree.get();
        }
    }
    return Status::notFound("no such table: " + name);
}

Status
Database::createTable(const std::string &name)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (hasTable(name))
        return Status::alreadyExists("table exists: " + name);
    return withWriteTxn([&] {
        StatusOr<PageNo> root = BTree::create(pager_.get());
        if (!root.isOk())
            return root.status();
        i64 key = catalogBaseKey(name);
        for (int probe = 0; probe < 16; ++probe, ++key) {
            if (!catalog_->contains(key))
                break;
        }
        std::vector<u8> entry = encodeCatalogEntry(*root, name);
        MGSP_RETURN_IF_ERROR(
            catalog_->put(key, ConstSlice(entry.data(), entry.size())));
        OpenTable table;
        table.tree = std::make_unique<BTree>(pager_.get(), *root);
        table.lastPersistedRoot = *root;
        table.catalogKey = key;
        tables_.emplace(name, std::move(table));
        return Status::ok();
    });
}

bool
Database::hasTable(const std::string &name)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (tables_.count(name))
        return true;
    StatusOr<BTree *> tree = tableTree(name);
    return tree.isOk();
}

Status
Database::begin()
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (inTxn_)
        return Status::busy("transaction already open");
    inTxn_ = true;
    return Status::ok();
}

Status
Database::syncTableRoots()
{
    // Persist any moved table roots into the catalog, and the moved
    // catalog root into the header.
    for (auto &[name, table] : tables_) {
        if (table.tree->root() != table.lastPersistedRoot) {
            std::vector<u8> entry =
                encodeCatalogEntry(table.tree->root(), name);
            MGSP_RETURN_IF_ERROR(catalog_->put(
                table.catalogKey, ConstSlice(entry.data(),
                                             entry.size())));
            table.lastPersistedRoot = table.tree->root();
        }
    }
    if (catalog_->root() != pager_->header().catalogRoot) {
        pager_->header().catalogRoot = catalog_->root();
        MGSP_RETURN_IF_ERROR(pager_->flushHeaderToCache());
    }
    return Status::ok();
}

Status
Database::commitLocked()
{
    MGSP_RETURN_IF_ERROR(syncTableRoots());
    const auto &dirty = pager_->dirtyPages();
    if (dirty.empty()) {
        inTxn_ = false;
        ++stats_.commits;
        return Status::ok();
    }

    if (options_.journal == JournalMode::Wal) {
        std::vector<const Page *> pages;
        pages.reserve(dirty.size());
        for (PageNo page_no : dirty) {
            StatusOr<Page *> page = pager_->getPage(page_no);
            if (!page.isOk())
                return page.status();
            pages.push_back(*page);
        }
        MGSP_RETURN_IF_ERROR(
            wal_->commit(pages, pager_->header().pageCount));
        stats_.walFramesWritten += pages.size();
        pager_->commitClear();
        inTxn_ = false;
        ++stats_.commits;
        if (wal_->checkpointDue())
            MGSP_RETURN_IF_ERROR(checkpoint());
        return Status::ok();
    }

    std::vector<PageNo> ordered(dirty.begin(), dirty.end());
    std::sort(ordered.begin(), ordered.end());

    if (options_.journal == JournalMode::Txn) {
        Status ts = commitViaTxn(ordered);
        if (ts.code() != StatusCode::Unsupported) {
            MGSP_RETURN_IF_ERROR(ts);
            pager_->commitClear();
            inTxn_ = false;
            ++stats_.commits;
            return Status::ok();
        }
        // Engine without beginTxn: degrade to the OFF write path
        // (per-run atomicity only) rather than failing the commit.
        ++stats_.txnFallbacks;
    }

    MGSP_RETURN_IF_ERROR(commitDirect(ordered));
    pager_->commitClear();
    inTxn_ = false;
    ++stats_.commits;
    return Status::ok();
}

Status
Database::commitViaTxn(const std::vector<PageNo> &ordered)
{
    TxnStamp stamp;
    stamp.magic = TxnStamp::kMagic;
    stamp.seq = stats_.commits + 1;
    stamp.pages = ordered.size();
    stamp.checksum = hashBytes(&stamp, offsetof(TxnStamp, checksum));

    // EAGAIN (ResourceBusy below the vfs) means the engine's
    // bounded internal retry exhausted a transient resource — the
    // whole txn rolled back clean, so re-staging it is safe.
    Status s = Status::ok();
    for (int attempt = 0; attempt < 3; ++attempt) {
        if (attempt != 0)
            ++stats_.txnCommitRetries;
        StatusOr<std::unique_ptr<FileTxn>> txn = fs_->beginTxn();
        if (!txn.isOk()) {
            // No cross-file support (or a mode that excludes it,
            // e.g. epoch group sync): tell the caller to fall back.
            return Status::unsupported(txn.status().message());
        }
        for (PageNo page_no : ordered) {
            StatusOr<Page *> page = pager_->getPage(page_no);
            if (!page.isOk())
                return page.status();
            MGSP_RETURN_IF_ERROR((*txn)->pwrite(
                dbFile_.get(), u64(page_no) * kPageSize,
                ConstSlice((*page)->data.data(), kPageSize)));
        }
        MGSP_RETURN_IF_ERROR((*txn)->pwrite(
            walFile_.get(), 0,
            ConstSlice(reinterpret_cast<const u8 *>(&stamp),
                       sizeof(stamp))));
        s = (*txn)->commit();
        if (statusToErrno(s) != EAGAIN)
            break;
    }
    if (s.isOk()) {
        stats_.pagesWrittenDirect += ordered.size();
        ++stats_.txnCommits;
    }
    return s;
}

Status
Database::commitDirect(const std::vector<PageNo> &ordered)
{
    // Write dirty pages home and fsync. Consecutive pages are
    // grouped into one pwritev each, so an engine with vectored
    // atomic commit (MGSP) persists every run all-or-nothing
    // instead of page by page.
    for (std::size_t i = 0; i < ordered.size();) {
        std::size_t j = i;
        std::vector<ConstSlice> spans;
        while (j < ordered.size() &&
               ordered[j] == ordered[i] + (j - i)) {
            StatusOr<Page *> page = pager_->getPage(ordered[j]);
            if (!page.isOk())
                return page.status();
            spans.emplace_back((*page)->data.data(), kPageSize);
            ++j;
        }
        MGSP_RETURN_IF_ERROR(
            dbFile_->pwritev(u64(ordered[i]) * kPageSize, spans));
        stats_.pagesWrittenDirect += spans.size();
        i = j;
    }
    return dbFile_->sync();
}

Status
Database::commit()
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (!inTxn_)
        return Status::invalidArgument("no open transaction");
    return commitLocked();
}

Status
Database::rollback()
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (!inTxn_)
        return Status::invalidArgument("no open transaction");
    if (options_.journal == JournalMode::Off)
        return Status::unsupported(
            "journal_mode=OFF cannot roll back (as in SQLite)");
    MGSP_RETURN_IF_ERROR(pager_->rollbackClear());
    // Cached trees may hold stale roots; rebind from the catalog.
    catalog_ = std::make_unique<BTree>(pager_.get(),
                                       pager_->header().catalogRoot);
    tables_.clear();
    inTxn_ = false;
    return Status::ok();
}

Status
Database::withWriteTxn(const std::function<Status()> &body)
{
    if (inTxn_)
        return body();
    MGSP_RETURN_IF_ERROR(begin());
    Status s = body();
    if (!s.isOk()) {
        if (options_.journal != JournalMode::Off) {
            Status rb = rollback();
            if (!rb.isOk())
                MGSP_WARN("auto-rollback failed: %s",
                          rb.toString().c_str());
        } else {
            inTxn_ = false;
        }
        return s;
    }
    // EAGAIN (vfs statusToErrno) means transient engine exhaustion —
    // the cleaner is still draining shadow resources. The dirty pages
    // stay cached and WAL replay stops at the last commit frame, so
    // re-running the commit is safe; ENOSPC and everything else stay
    // fatal to the transaction.
    Status cs = commitLocked();
    for (int retry = 0; statusToErrno(cs) == EAGAIN && retry < 3;
         ++retry)
        cs = commitLocked();
    return cs;
}

Status
Database::insert(const std::string &table, i64 key, ConstSlice value)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return withWriteTxn([&] {
        if ((*tree)->contains(key))
            return Status::alreadyExists("duplicate key");
        return (*tree)->put(key, value);
    });
}

Status
Database::update(const std::string &table, i64 key, ConstSlice value)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return withWriteTxn([&] {
        if (!(*tree)->contains(key))
            return Status::notFound("no such key");
        return (*tree)->put(key, value);
    });
}

Status
Database::remove(const std::string &table, i64 key)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return withWriteTxn([&] { return (*tree)->erase(key); });
}

StatusOr<std::vector<u8>>
Database::get(const std::string &table, i64 key)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return (*tree)->get(key);
}

Status
Database::scan(const std::string &table, i64 first, i64 last,
               const std::function<bool(i64, ConstSlice)> &fn)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return (*tree)->scanRange(first, last, fn);
}

StatusOr<u64>
Database::rowCount(const std::string &table)
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    StatusOr<BTree *> tree = tableTree(table);
    if (!tree.isOk())
        return tree.status();
    return (*tree)->count();
}

Status
Database::checkpoint()
{
    std::lock_guard<std::recursive_mutex> guard(mutex_);
    if (options_.journal != JournalMode::Wal)
        return Status::ok();
    StatusOr<std::vector<PageNo>> pages = wal_->checkpoint(dbFile_.get());
    if (!pages.isOk())
        return pages.status();
    pager_->invalidate(*pages);
    ++stats_.walCheckpoints;
    return Status::ok();
}

}  // namespace mgsp::minidb
