/**
 * @file
 * Page manager of minidb, the embedded database used to reproduce the
 * paper's SQLite experiments (Figs. 11 and 12).
 *
 * minidb reproduces SQLite's *I/O pattern*, which is what the paper's
 * evaluation depends on: a 4 KiB-page B-tree file updated through
 * transactions in either WAL mode (commit appends frames to a -wal
 * file and fsyncs it; a checkpoint later copies frames home) or
 * journal-mode OFF (commit writes dirty pages straight to the
 * database file and fsyncs), all through the vfs::FileSystem under
 * test.
 *
 * The pager caches pages in DRAM (SQLite's page cache), tracks the
 * dirty set of the open transaction, and delegates commit-time I/O to
 * the database's journal strategy.
 */
#ifndef MGSP_MINIDB_PAGER_H
#define MGSP_MINIDB_PAGER_H

#include <array>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "vfs/vfs.h"

namespace mgsp::minidb {

inline constexpr u64 kPageSize = 4 * KiB;
using PageNo = u32;
inline constexpr PageNo kNoPage = 0;  ///< page 0 is the header

/** A pinned page in the cache. */
struct Page
{
    PageNo number = kNoPage;
    bool dirty = false;
    std::array<u8, kPageSize> data;
};

/** Database file header (page 0). */
struct DbHeader
{
    static constexpr u64 kMagic = 0x4D494E4944423031ull;  // "MINIDB01"
    u64 magic;
    u32 pageCount;     ///< pages in the file, including the header
    u32 freeListHead;  ///< first free page (0 = none)
    u32 catalogRoot;   ///< root page of the catalog B-tree
    u32 reserved;
    u64 changeCounter;
};

/** See file comment. */
class Pager
{
  public:
    /**
     * @param file        the open database file.
     * @param cache_pages page-cache capacity (clean pages evictable).
     */
    Pager(File *file, u64 cache_pages = 4096);

    /** Initialises a fresh database file (writes the header). */
    Status initialize();

    /** Loads the header of an existing database. */
    Status open();

    DbHeader &header() { return header_; }

    /**
     * Returns page @p page for reading; faults it from the WAL
     * overlay (if installed) or the file.
     */
    StatusOr<Page *> getPage(PageNo page);

    /** Like getPage() but marks the page dirty for the open txn. */
    StatusOr<Page *> getPageWritable(PageNo page);

    /** Allocates a page (freelist first, then file growth). */
    StatusOr<PageNo> allocPage();

    /** Returns @p page to the freelist. */
    Status freePage(PageNo page);

    /** Pages dirtied since the last commitClear(). */
    const std::unordered_set<PageNo> &dirtyPages() const { return dirty_; }

    /** Serialises the header into its page image (page 0). */
    Status flushHeaderToCache();

    /** Marks all pages clean (after the journal strategy persisted
     *  them). */
    void commitClear();

    /**
     * Rollback: drops every dirty page from the cache (they reload
     * from the file / WAL overlay on next access) and re-reads the
     * header.
     */
    Status rollbackClear();

    /**
     * Installs a read overlay: pages present in @p overlay are read
     * from it instead of the file (the WAL index). Pass nullptr to
     * remove.
     */
    using Overlay =
        std::unordered_map<PageNo, std::shared_ptr<std::vector<u8>>>;
    void setOverlay(const Overlay *overlay) { overlay_ = overlay; }

    /** Drops cached copies of @p pages (after a WAL checkpoint). */
    void invalidate(const std::vector<PageNo> &pages);

    File *file() { return file_; }

  private:
    Status readPageFromStorage(PageNo page, u8 *out);
    void touch(PageNo page);
    void evictIfNeeded();

    File *file_;
    u64 cachePages_;
    DbHeader header_{};

    std::unordered_map<PageNo, std::unique_ptr<Page>> cache_;
    std::list<PageNo> lru_;  ///< front = most recent
    std::unordered_map<PageNo, std::list<PageNo>::iterator> lruPos_;
    std::unordered_set<PageNo> dirty_;
    const Overlay *overlay_ = nullptr;
};

}  // namespace mgsp::minidb

#endif  // MGSP_MINIDB_PAGER_H
