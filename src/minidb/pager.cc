#include "minidb/pager.h"

#include <cstring>

#include "common/logging.h"

namespace mgsp::minidb {

Pager::Pager(File *file, u64 cache_pages)
    : file_(file), cachePages_(cache_pages)
{
}

Status
Pager::initialize()
{
    header_ = DbHeader{};
    header_.magic = DbHeader::kMagic;
    header_.pageCount = 1;
    header_.freeListHead = kNoPage;
    header_.catalogRoot = kNoPage;
    header_.changeCounter = 0;
    std::array<u8, kPageSize> zero{};
    std::memcpy(zero.data(), &header_, sizeof(header_));
    MGSP_RETURN_IF_ERROR(file_->pwrite(0, ConstSlice(zero.data(),
                                                     kPageSize)));
    return file_->sync();
}

Status
Pager::open()
{
    // Must read through the WAL overlay: after a crash the newest
    // header often lives only in un-checkpointed WAL frames.
    std::array<u8, kPageSize> buf{};
    MGSP_RETURN_IF_ERROR(readPageFromStorage(0, buf.data()));
    std::memcpy(&header_, buf.data(), sizeof(header_));
    if (header_.magic != DbHeader::kMagic)
        return Status::corruption("bad database magic");
    return Status::ok();
}

Status
Pager::readPageFromStorage(PageNo page, u8 *out)
{
    if (overlay_ != nullptr) {
        auto it = overlay_->find(page);
        if (it != overlay_->end()) {
            std::memcpy(out, it->second->data(), kPageSize);
            return Status::ok();
        }
    }
    StatusOr<u64> n =
        file_->pread(u64(page) * kPageSize, MutSlice(out, kPageSize));
    if (!n.isOk())
        return n.status();
    if (*n < kPageSize)
        std::memset(out + *n, 0, kPageSize - *n);
    return Status::ok();
}

StatusOr<Page *>
Pager::getPage(PageNo page)
{
    auto it = cache_.find(page);
    if (it != cache_.end()) {
        touch(page);
        return it->second.get();
    }
    auto fresh = std::make_unique<Page>();
    fresh->number = page;
    MGSP_RETURN_IF_ERROR(readPageFromStorage(page, fresh->data.data()));
    Page *raw = fresh.get();
    cache_[page] = std::move(fresh);
    lru_.push_front(page);
    lruPos_[page] = lru_.begin();
    evictIfNeeded();
    return raw;
}

StatusOr<Page *>
Pager::getPageWritable(PageNo page)
{
    StatusOr<Page *> p = getPage(page);
    if (!p.isOk())
        return p;
    (*p)->dirty = true;
    dirty_.insert(page);
    return p;
}

StatusOr<PageNo>
Pager::allocPage()
{
    if (header_.freeListHead != kNoPage) {
        const PageNo page = header_.freeListHead;
        StatusOr<Page *> p = getPage(page);
        if (!p.isOk())
            return p.status();
        u32 next;
        std::memcpy(&next, (*p)->data.data(), 4);
        header_.freeListHead = next;
        // The page becomes live; zero it for the caller.
        StatusOr<Page *> w = getPageWritable(page);
        if (!w.isOk())
            return w.status();
        (*w)->data.fill(0);
        MGSP_RETURN_IF_ERROR(flushHeaderToCache());
        return page;
    }
    const PageNo page = header_.pageCount;
    ++header_.pageCount;
    auto fresh = std::make_unique<Page>();
    fresh->number = page;
    fresh->dirty = true;
    fresh->data.fill(0);
    cache_[page] = std::move(fresh);
    lru_.push_front(page);
    lruPos_[page] = lru_.begin();
    dirty_.insert(page);
    MGSP_RETURN_IF_ERROR(flushHeaderToCache());
    return page;
}

Status
Pager::freePage(PageNo page)
{
    StatusOr<Page *> p = getPageWritable(page);
    if (!p.isOk())
        return p.status();
    (*p)->data.fill(0);
    std::memcpy((*p)->data.data(), &header_.freeListHead, 4);
    header_.freeListHead = page;
    return flushHeaderToCache();
}

Status
Pager::flushHeaderToCache()
{
    StatusOr<Page *> p = getPageWritable(0);
    if (!p.isOk())
        return p.status();
    ++header_.changeCounter;
    std::memcpy((*p)->data.data(), &header_, sizeof(header_));
    return Status::ok();
}

void
Pager::commitClear()
{
    for (PageNo page : dirty_) {
        auto it = cache_.find(page);
        if (it != cache_.end())
            it->second->dirty = false;
    }
    dirty_.clear();
    evictIfNeeded();
}

Status
Pager::rollbackClear()
{
    for (PageNo page : dirty_) {
        auto it = cache_.find(page);
        if (it != cache_.end()) {
            lru_.erase(lruPos_[page]);
            lruPos_.erase(page);
            cache_.erase(it);
        }
    }
    dirty_.clear();
    // Restore the header from storage.
    std::array<u8, kPageSize> buf{};
    MGSP_RETURN_IF_ERROR(readPageFromStorage(0, buf.data()));
    std::memcpy(&header_, buf.data(), sizeof(header_));
    return Status::ok();
}

void
Pager::invalidate(const std::vector<PageNo> &pages)
{
    for (PageNo page : pages) {
        auto it = cache_.find(page);
        if (it != cache_.end() && !it->second->dirty) {
            lru_.erase(lruPos_[page]);
            lruPos_.erase(page);
            cache_.erase(it);
        }
    }
}

void
Pager::touch(PageNo page)
{
    auto it = lruPos_.find(page);
    if (it != lruPos_.end()) {
        lru_.erase(it->second);
        lru_.push_front(page);
        it->second = lru_.begin();
    }
}

void
Pager::evictIfNeeded()
{
    while (cache_.size() > cachePages_ && !lru_.empty()) {
        // Evict the least-recently-used clean, unpinned page.
        bool evicted = false;
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            const PageNo page = *it;
            auto centry = cache_.find(page);
            if (centry == cache_.end() || centry->second->dirty ||
                page == 0)
                continue;
            cache_.erase(centry);
            lru_.erase(lruPos_[page]);
            lruPos_.erase(page);
            evicted = true;
            break;
        }
        if (!evicted)
            break;  // everything dirty; let the cache grow
    }
}

}  // namespace mgsp::minidb
