/**
 * @file
 * Write-ahead log of minidb, modelled on SQLite's WAL.
 *
 * Layout of the -wal file: a 64-byte header {magic, salt, frameCount}
 * followed by frames. Each frame is a 64-byte header {pageNo, commit
 * flag + dbSizeAfterCommit, salt, CRC64 over header+payload} plus the
 * 4 KiB page payload.
 *
 * Commit appends one frame per dirty page, marks the last frame as a
 * commit record, and fsyncs the -wal file once (SQLite synchronous=
 * FULL behaviour). Readers resolve pages through the in-memory WAL
 * index (page -> latest committed frame). Checkpoint copies the
 * newest committed version of every page back into the database
 * file, fsyncs it, and resets the WAL — the double write that makes
 * journal-mode OFF attractive on a file system with MGSP-grade
 * consistency (the paper's Figs. 11b/12 argument).
 *
 * Recovery scans frames, validating checksums and salts, and stops
 * at the first torn frame; only fully committed transactions are
 * replayed into the index.
 */
#ifndef MGSP_MINIDB_WAL_H
#define MGSP_MINIDB_WAL_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "minidb/pager.h"
#include "vfs/vfs.h"

namespace mgsp::minidb {

/** See file comment. */
class Wal
{
  public:
    /**
     * @param file                 the open -wal file.
     * @param checkpoint_frames    auto-checkpoint threshold (SQLite's
     *                             default is 1000 frames).
     */
    Wal(File *file, u64 checkpoint_frames = 1000);

    /** Initialises an empty WAL (fresh database). */
    Status initialize();

    /**
     * Recovers the index from an existing -wal file (crash path).
     * @param committed_frames_out frames replayed, for diagnostics.
     */
    Status recover(u64 *committed_frames_out = nullptr);

    /**
     * Appends one committed transaction: a frame per page in
     * @p pages, the last carrying the commit flag, then one fsync.
     */
    Status commit(const std::vector<const Page *> &pages,
                  u32 db_page_count);

    /** True if @p page has a committed WAL copy. */
    bool contains(PageNo page) const { return overlay_.count(page) != 0; }

    /** The read overlay for the pager (page -> newest payload). */
    const Pager::Overlay &overlay() const { return overlay_; }

    /** Frames appended since the last checkpoint. */
    u64 frameCount() const { return frameCount_; }

    /** @return true when an auto-checkpoint is due. */
    bool
    checkpointDue() const
    {
        return frameCount_ >= checkpointFrames_;
    }

    /**
     * Copies the newest committed pages into @p db_file, fsyncs it,
     * and resets the WAL. Returns the checkpointed page numbers so
     * the pager can invalidate stale cached copies.
     */
    StatusOr<std::vector<PageNo>> checkpoint(File *db_file);

    /** Database page count recorded by the last commit (recovery). */
    u32 dbPageCount() const { return dbPageCount_; }

  private:
    struct FrameHeader
    {
        u32 pageNo;
        u32 dbSizeAfterCommit;  ///< nonzero marks a commit frame
        u64 salt;
        u64 checksum;  ///< CRC64 over {pageNo, dbSize, salt, payload}
        u64 reserved[5];
    };
    static_assert(sizeof(FrameHeader) == 64);

    struct WalHeader
    {
        static constexpr u64 kMagic = 0x57414C3130303030ull;
        u64 magic;
        u64 salt;
        u64 reserved[6];
    };
    static_assert(sizeof(WalHeader) == 64);

    static constexpr u64 kFrameBytes = sizeof(FrameHeader) + kPageSize;

    u64 frameOffset(u64 frame) const
    {
        return sizeof(WalHeader) + frame * kFrameBytes;
    }

    static u64 frameChecksum(const FrameHeader &header, const u8 *payload);

    File *file_;
    u64 checkpointFrames_;
    u64 salt_ = 0;
    u64 frameCount_ = 0;
    u32 dbPageCount_ = 0;

    /// page -> newest committed payload; doubles as the pager overlay.
    Pager::Overlay overlay_;
};

}  // namespace mgsp::minidb

#endif  // MGSP_MINIDB_WAL_H
