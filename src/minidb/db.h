/**
 * @file
 * minidb: the embedded transactional table store standing in for
 * SQLite in the paper's application experiments (Figs. 11, 12).
 *
 * A Database is a pager-backed B-tree file plus a catalog mapping
 * table names to B-tree roots. Transactions are single-writer and
 * commit through one of SQLite's journal modes:
 *
 *  - JournalMode::Wal — commit appends the dirty pages as frames to
 *    the -wal file and fsyncs it; reads resolve through the WAL
 *    index; an auto-checkpoint copies frames home when the WAL
 *    exceeds its threshold. Rollback discards dirty pages.
 *  - JournalMode::Off — no journal: commit writes dirty pages
 *    straight to the database file and fsyncs. Rollback of a started
 *    transaction is unsupported (exactly SQLite's journal_mode=OFF
 *    contract); the paper's point is that an MGSP-backed file system
 *    makes this mode safe because every page write is already
 *    failure-atomic below the database.
 *  - JournalMode::Txn — cross-file transaction (DESIGN.md §17):
 *    commit stages the dirty pages at their home offsets in the
 *    database file plus a commit stamp in the -wal companion, and
 *    FileSystem::beginTxn() lands both files all-or-nothing. No
 *    frames, no checkpoint, no double write — the WAL-then-main
 *    two-step collapses into one failure-atomic commit. Rollback
 *    works (pages never reach the file before commit). On engines
 *    without beginTxn (ENOTSUP) the commit falls back to the OFF
 *    write path.
 */
#ifndef MGSP_MINIDB_DB_H
#define MGSP_MINIDB_DB_H

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "minidb/btree.h"
#include "minidb/pager.h"
#include "minidb/wal.h"
#include "vfs/vfs.h"

namespace mgsp::minidb {

/** SQLite-style journal modes minidb reproduces (Txn is the
 * cross-file extension; see file comment). */
enum class JournalMode { Wal, Off, Txn };

/** Database configuration. */
struct DbOptions
{
    JournalMode journal = JournalMode::Wal;
    /** WAL auto-checkpoint threshold in frames (SQLite default 1000). */
    u64 walAutoCheckpointFrames = 1000;
    /** Page-cache capacity. */
    u64 cachePages = 4096;
    /** Capacity for newly created db/-wal files on extent-based FSes. */
    u64 fileCapacity = 64 * MiB;
};

/** Aggregate I/O statistics of one Database. */
struct DbStats
{
    u64 commits = 0;
    u64 walCheckpoints = 0;
    u64 walFramesWritten = 0;
    u64 pagesWrittenDirect = 0;
    u64 txnCommits = 0;        ///< commits through the cross-file txn
    u64 txnCommitRetries = 0;  ///< EAGAIN retries of a txn commit
    u64 txnFallbacks = 0;      ///< commits that fell back to direct writes
};

/** See file comment. */
class Database
{
  public:
    /**
     * Opens (creating if needed) the database @p path on @p fs.
     * The -wal companion file is managed automatically in WAL mode.
     */
    static StatusOr<std::unique_ptr<Database>>
    open(FileSystem *fs, const std::string &path, const DbOptions &options);

    ~Database();

    Database(const Database &) = delete;
    Database &operator=(const Database &) = delete;

    /** Creates a table; AlreadyExists if present. */
    Status createTable(const std::string &name);

    /** True iff the table exists. */
    bool hasTable(const std::string &name);

    // ---- transactions (single writer) ----------------------------
    Status begin();
    Status commit();
    Status rollback();

    // ---- row operations (auto-commit when no txn is open) --------
    Status insert(const std::string &table, i64 key, ConstSlice value);
    Status update(const std::string &table, i64 key, ConstSlice value);
    Status remove(const std::string &table, i64 key);
    StatusOr<std::vector<u8>> get(const std::string &table, i64 key);
    Status scan(const std::string &table, i64 first, i64 last,
                const std::function<bool(i64, ConstSlice)> &fn);
    StatusOr<u64> rowCount(const std::string &table);

    /** Forces a WAL checkpoint (no-op in OFF mode). */
    Status checkpoint();

    const DbStats &stats() const { return stats_; }
    JournalMode journalMode() const { return options_.journal; }

  private:
    Database(FileSystem *fs, DbOptions options);

    Status bootstrap(const std::string &path);
    StatusOr<BTree *> tableTree(const std::string &name);
    Status syncTableRoots();
    Status commitLocked();
    /** JournalMode::Txn commit body: one cross-file txn staging the
     * dirty pages home plus the commit stamp in the -wal companion,
     * with a bounded EAGAIN retry. Unsupported when the engine has
     * no beginTxn — the caller falls back to direct writes. */
    Status commitViaTxn(const std::vector<PageNo> &ordered);
    /** Dirty pages straight home (OFF mode, and the Txn fallback). */
    Status commitDirect(const std::vector<PageNo> &ordered);

    /** Runs @p body inside the open txn or an auto-commit wrapper. */
    Status withWriteTxn(const std::function<Status()> &body);

    FileSystem *fs_;
    DbOptions options_;
    std::unique_ptr<File> dbFile_;
    std::unique_ptr<File> walFile_;
    std::unique_ptr<Pager> pager_;
    std::unique_ptr<Wal> wal_;
    std::unique_ptr<BTree> catalog_;

    struct OpenTable
    {
        std::unique_ptr<BTree> tree;
        PageNo lastPersistedRoot = kNoPage;
        i64 catalogKey = 0;
    };
    std::map<std::string, OpenTable> tables_;

    std::recursive_mutex mutex_;
    bool inTxn_ = false;
    DbStats stats_;
};

}  // namespace mgsp::minidb

#endif  // MGSP_MINIDB_DB_H
