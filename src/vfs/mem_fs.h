/**
 * @file
 * A trivial in-memory file system.
 *
 * Reference implementation of the vfs interface: no crash
 * consistency, no cost model. Used as the correctness oracle in
 * differential tests (every engine must produce byte-identical file
 * contents to MemFs under the same operation sequence) and as the
 * fastest backing store for minidb unit tests.
 */
#ifndef MGSP_VFS_MEM_FS_H
#define MGSP_VFS_MEM_FS_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "vfs/vfs.h"

namespace mgsp {

/** In-memory FileSystem; see file comment. */
class MemFs : public FileSystem
{
  public:
    const char *name() const override { return "memfs"; }

    ConsistencyLevel
    consistency() const override
    {
        return ConsistencyLevel::MetadataOnly;
    }

    StatusOr<std::unique_ptr<File>>
    open(const std::string &path, const OpenOptions &options) override;

    Status remove(const std::string &path) override;
    bool exists(const std::string &path) const override;

    u64
    logicalBytesWritten() const override
    {
        return logicalBytes_.load(std::memory_order_relaxed);
    }

    /** Shared file state; public so the handle class can hold it. */
    struct Inode
    {
        std::mutex mutex;
        std::vector<u8> data;
    };

  private:
    mutable std::mutex tableMutex_;
    std::map<std::string, std::shared_ptr<Inode>> inodes_;
    std::atomic<u64> logicalBytes_{0};
};

}  // namespace mgsp

#endif  // MGSP_VFS_MEM_FS_H
