#include "vfs/mem_fs.h"

#include <algorithm>
#include <cstring>

namespace mgsp {

namespace {

/** File handle over a MemFs inode. */
class MemFile : public File
{
  public:
    MemFile(std::shared_ptr<MemFs::Inode> inode, std::atomic<u64> *counter)
        : inode_(std::move(inode)), logicalBytes_(counter)
    {
    }

    StatusOr<u64>
    pread(u64 offset, MutSlice dst) override
    {
        std::lock_guard<std::mutex> guard(inode_->mutex);
        if (offset >= inode_->data.size())
            return u64{0};
        const u64 n =
            std::min<u64>(dst.size(), inode_->data.size() - offset);
        std::memcpy(dst.data(), inode_->data.data() + offset, n);
        return n;
    }

    Status
    pwrite(u64 offset, ConstSlice src) override
    {
        std::lock_guard<std::mutex> guard(inode_->mutex);
        if (offset + src.size() > inode_->data.size())
            inode_->data.resize(offset + src.size(), 0);
        std::memcpy(inode_->data.data() + offset, src.data(), src.size());
        logicalBytes_->fetch_add(src.size(), std::memory_order_relaxed);
        return Status::ok();
    }

    Status sync() override { return Status::ok(); }

    u64
    size() const override
    {
        std::lock_guard<std::mutex> guard(inode_->mutex);
        return inode_->data.size();
    }

    Status
    truncate(u64 new_size) override
    {
        std::lock_guard<std::mutex> guard(inode_->mutex);
        inode_->data.resize(new_size, 0);
        return Status::ok();
    }

  private:
    std::shared_ptr<MemFs::Inode> inode_;
    std::atomic<u64> *logicalBytes_;
};

}  // namespace

StatusOr<std::unique_ptr<File>>
MemFs::open(const std::string &path, const OpenOptions &options)
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    auto it = inodes_.find(path);
    if (it == inodes_.end()) {
        if (!options.create)
            return Status::notFound("no such file: " + path);
        // Growable engine: OpenOptions::capacity is advisory only.
        it = inodes_.emplace(path, std::make_shared<Inode>()).first;
    } else if (options.create && options.exclusive) {
        return Status::alreadyExists("file exists: " + path);
    }
    if (options.truncate) {
        std::lock_guard<std::mutex> inode_guard(it->second->mutex);
        it->second->data.clear();
    }
    return std::unique_ptr<File>(
        std::make_unique<MemFile>(it->second, &logicalBytes_));
}

Status
MemFs::remove(const std::string &path)
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    if (inodes_.erase(path) == 0)
        return Status::notFound("no such file: " + path);
    return Status::ok();
}

bool
MemFs::exists(const std::string &path) const
{
    std::lock_guard<std::mutex> guard(tableMutex_);
    return inodes_.count(path) != 0;
}

}  // namespace mgsp
