/**
 * @file
 * File abstraction implemented by every storage engine in the repo.
 *
 * The benchmark harness and the minidb database run against this
 * interface, so MGSP and the three baselines (Ext4-DAX, Libnvmmio and
 * NOVA models) are interchangeable, exactly like swapping the mounted
 * file system in the paper's evaluation.
 *
 * Implementations must be thread-safe: the scalability experiments
 * (Fig. 10) issue pread/pwrite on one File object from many threads.
 */
#ifndef MGSP_VFS_VFS_H
#define MGSP_VFS_VFS_H

#include <cerrno>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace mgsp {

/**
 * POSIX errno equivalent of @p s, for callers (minidb, the benches)
 * that want classic file-system failure semantics out of the vfs
 * layer. The load-bearing distinction is transient vs. permanent
 * exhaustion: ResourceBusy -> EAGAIN (retry later, the cleaner is
 * draining), OutOfSpace -> ENOSPC (the file/pool really is full).
 */
inline int
statusToErrno(const Status &s)
{
    switch (s.code()) {
    case StatusCode::Ok:
        return 0;
    case StatusCode::NotFound:
        return ENOENT;
    case StatusCode::AlreadyExists:
        return EEXIST;
    case StatusCode::InvalidArgument:
        return EINVAL;
    case StatusCode::OutOfSpace:
        return ENOSPC;
    case StatusCode::ResourceBusy:
        return EAGAIN;
    case StatusCode::Busy:
        return EBUSY;
    case StatusCode::Unsupported:
        return ENOTSUP;
    case StatusCode::Corruption:
    case StatusCode::IoError:
    case StatusCode::MediaError:
    case StatusCode::Internal:
        return EIO;
    }
    return EIO;
}

/** Options for FileSystem::open(). */
struct OpenOptions
{
    bool create = false;     ///< create if missing
    bool truncate = false;   ///< reset length to zero on open
    bool exclusive = false;  ///< with create: fail if the file exists
    /**
     * With create: fixed extent capacity in bytes for engines that
     * preallocate (MGSP and the NVM baselines); 0 = engine default.
     * Growable engines (MemFs) ignore it.
     */
    u64 capacity = 0;

    /** Creation options, the successor of the createFile() entry point. */
    static OpenOptions
    Create(u64 capacity = 0, bool exclusive = true)
    {
        OpenOptions o;
        o.create = true;
        o.exclusive = exclusive;
        o.capacity = capacity;
        return o;
    }
};

/**
 * Access-pattern advice for File::advise(). Hints never change
 * correctness — engines are free to ignore them entirely (the default
 * implementation does) — they only steer read-cache admission.
 */
enum class AccessHint {
    Normal,      ///< engine-default admission policy
    ReadMostly,  ///< populate the read cache eagerly on first miss
    Sequential,  ///< streaming scan: serve hits, never populate
    DontCache,   ///< bypass the read cache entirely for this file
};

/**
 * Snapshot of a file system's read-cache counters, returned by
 * FileSystem::cacheStats(). Engines without a cache return zeros.
 */
struct CacheStats
{
    u64 hits = 0;         ///< reads served from DRAM frames
    u64 misses = 0;       ///< lookups that fell through to the engine
    u64 evictions = 0;    ///< frames reclaimed by the budget sweep
    u64 invalidations = 0;///< frames dropped by writes/truncate/faults
    u64 frameBytes = 0;   ///< configured DRAM budget in bytes
    u64 residentFrames = 0;///< frames currently holding valid data
};

/** Per-file-system consistency guarantee, used in bench labels. */
enum class ConsistencyLevel {
    MetadataOnly,      ///< Ext4-DAX: data can be torn by a crash
    SyncAtomic,        ///< Libnvmmio: atomic up to the last sync
    OperationAtomic,   ///< MGSP / NOVA: every write is atomic
};

/** A handle to an open file. */
class File
{
  public:
    virtual ~File() = default;

    /**
     * Reads up to dst.size() bytes from @p offset.
     * @return bytes read (short count at EOF).
     *
     * Engines backed by faulty media may return StatusCode::MediaError
     * when the range overlaps an uncorrectable region. The error is
     * returned only after the engine's own bounded retry (MGSP:
     * MgspConfig::mediaErrorRetries) has failed, so callers should
     * treat it as persistent for that range, not retry-looping on it.
     * @p dst may then hold partially copied (poison-pattern) bytes.
     */
    virtual StatusOr<u64> pread(u64 offset, MutSlice dst) = 0;

    /** Writes src at @p offset, extending the file if needed. */
    virtual Status pwrite(u64 offset, ConstSlice src) = 0;

    /**
     * Vectored read: fills @p spans with consecutive bytes starting
     * at @p offset (spans lay end-to-end, POSIX preadv style).
     * @return total bytes read (short count at EOF).
     *
     * The default loops over pread(); engines may override.
     */
    virtual StatusOr<u64>
    preadv(u64 offset, const std::vector<MutSlice> &spans)
    {
        u64 total = 0;
        for (const MutSlice &s : spans) {
            if (s.empty())
                continue;
            StatusOr<u64> n = pread(offset + total, s);
            if (!n.isOk())
                return n.status();
            total += *n;
            if (*n < s.size())
                break;  // EOF
        }
        return total;
    }

    /**
     * Vectored write: stores @p spans end-to-end starting at
     * @p offset. The default loops over pwrite(), so each span gets
     * this engine's per-write guarantee but the combination does not;
     * MGSP overrides it to commit the whole vector as ONE
     * failure-atomic unit when it fits a single metadata-log entry.
     */
    virtual Status
    pwritev(u64 offset, const std::vector<ConstSlice> &spans)
    {
        u64 pos = offset;
        for (const ConstSlice &s : spans) {
            if (s.empty())
                continue;
            MGSP_RETURN_IF_ERROR(pwrite(pos, s));
            pos += s.size();
        }
        return Status::ok();
    }

    /**
     * Declares this handle's expected access pattern. Purely advisory:
     * engines without a read cache accept and ignore it (the default),
     * so baselines and MemFs behave identically with or without
     * advice. MGSP honors DontCache (full bypass) and ReadMostly
     * (eager admission on first miss).
     */
    virtual Status
    advise(AccessHint hint)
    {
        (void)hint;
        return Status::ok();
    }

    /** Makes all completed writes durable. */
    virtual Status sync() = 0;

    /** Current file length in bytes. */
    virtual u64 size() const = 0;

    /** Sets the file length (zero-fills on extension). */
    virtual Status truncate(u64 new_size) = 0;
};

/** A mountable file system / storage engine. */
class FileSystem
{
  public:
    virtual ~FileSystem() = default;

    /** Engine name for bench output ("mgsp", "ext4-dax", ...). */
    virtual const char *name() const = 0;

    /** Consistency guarantee this engine provides. */
    virtual ConsistencyLevel consistency() const = 0;

    /** Opens (optionally creating) @p path. */
    virtual StatusOr<std::unique_ptr<File>>
    open(const std::string &path, const OpenOptions &options) = 0;

    /** Removes @p path. */
    virtual Status remove(const std::string &path) = 0;

    /** @return true iff @p path exists. */
    virtual bool exists(const std::string &path) const = 0;

    /** Logical bytes the application asked this FS to write. */
    virtual u64 logicalBytesWritten() const = 0;

    /**
     * Read-cache counter snapshot; all-zero for engines without a
     * cache (the default).
     */
    virtual CacheStats
    cacheStats() const
    {
        return CacheStats{};
    }

    /**
     * Drops every clean read-cache frame (a no-op for engines without
     * a cache). Never discards dirty state: MGSP's cache is read-only
     * so this cannot lose data on any engine.
     */
    virtual Status
    dropCaches()
    {
        return Status::ok();
    }
};

}  // namespace mgsp

#endif  // MGSP_VFS_VFS_H
