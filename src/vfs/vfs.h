/**
 * @file
 * File abstraction implemented by every storage engine in the repo.
 *
 * The benchmark harness and the minidb database run against this
 * interface, so MGSP and the three baselines (Ext4-DAX, Libnvmmio and
 * NOVA models) are interchangeable, exactly like swapping the mounted
 * file system in the paper's evaluation.
 *
 * Implementations must be thread-safe: the scalability experiments
 * (Fig. 10) issue pread/pwrite on one File object from many threads.
 */
#ifndef MGSP_VFS_VFS_H
#define MGSP_VFS_VFS_H

#include <cerrno>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace mgsp {

/**
 * POSIX errno equivalent of @p s, for callers (minidb, the benches)
 * that want classic file-system failure semantics out of the vfs
 * layer. The load-bearing distinctions: transient vs. permanent
 * exhaustion — ResourceBusy -> EAGAIN (retry later, the cleaner is
 * draining), OutOfSpace -> ENOSPC (the file/pool really is full) —
 * and fault vs. containment — MediaError -> EIO (this access hit
 * rotten media), ReadOnlyFs -> EROFS (the engine or file is fenced
 * read-only until it heals; see FileSystem::health()).
 */
inline int
statusToErrno(const Status &s)
{
    switch (s.code()) {
    case StatusCode::Ok:
        return 0;
    case StatusCode::NotFound:
        return ENOENT;
    case StatusCode::AlreadyExists:
        return EEXIST;
    case StatusCode::InvalidArgument:
        return EINVAL;
    case StatusCode::OutOfSpace:
        return ENOSPC;
    case StatusCode::ResourceBusy:
        return EAGAIN;
    case StatusCode::Busy:
        return EBUSY;
    case StatusCode::Unsupported:
        return ENOTSUP;
    case StatusCode::ReadOnlyFs:
        return EROFS;
    case StatusCode::Corruption:
    case StatusCode::IoError:
    case StatusCode::MediaError:
    case StatusCode::Internal:
        return EIO;
    }
    return EIO;
}

/** Options for FileSystem::open(). */
struct OpenOptions
{
    bool create = false;     ///< create if missing
    bool truncate = false;   ///< reset length to zero on open
    bool exclusive = false;  ///< with create: fail if the file exists
    /**
     * With create: fixed extent capacity in bytes for engines that
     * preallocate (MGSP and the NVM baselines); 0 = engine default.
     * Growable engines (MemFs) ignore it.
     */
    u64 capacity = 0;

    /** Creation options, the successor of the createFile() entry point. */
    static OpenOptions
    Create(u64 capacity = 0, bool exclusive = true)
    {
        OpenOptions o;
        o.create = true;
        o.exclusive = exclusive;
        o.capacity = capacity;
        return o;
    }
};

/**
 * Access-pattern advice for File::advise(). Hints never change
 * correctness — engines are free to ignore them entirely (the default
 * implementation does) — they only steer read-cache admission.
 */
enum class AccessHint {
    Normal,      ///< engine-default admission policy
    ReadMostly,  ///< populate the read cache eagerly on first miss
    Sequential,  ///< streaming scan: serve hits, never populate
    DontCache,   ///< bypass the read cache entirely for this file
};

/**
 * Snapshot of a file system's read-cache counters, returned by
 * FileSystem::cacheStats(). Engines without a cache return zeros.
 */
struct CacheStats
{
    u64 hits = 0;         ///< reads served from DRAM frames
    u64 misses = 0;       ///< lookups that fell through to the engine
    u64 evictions = 0;    ///< frames reclaimed by the budget sweep
    u64 invalidations = 0;///< frames dropped by writes/truncate/faults
    u64 frameBytes = 0;   ///< configured DRAM budget in bytes
    u64 residentFrames = 0;///< frames currently holding valid data
};

/**
 * Engine-wide health, reported by FileSystem::health(). The state
 * machine is monotonic until healed: faults only escalate
 * (Healthy → Degraded → ReadOnly → FailStop), and only a completed
 * online repair de-escalates (Degraded → Healthy). ReadOnly and
 * FailStop are terminal for the mount — ReadOnly still serves reads
 * (writes get EROFS), FailStop rejects everything (EIO) — and are
 * recorded persistently so the next mount starts there too.
 */
enum class HealthState {
    Healthy,
    Degraded,  ///< at least one inode fenced, or salvage scars found
    ReadOnly,  ///< engine-wide mutation fence (e.g. superblock loss)
    FailStop,  ///< unrecoverable; all operations rejected
};

/**
 * Per-file fence state, reported by File::health(). A fenced file
 * rejects writes (EROFS) and serves reads only after CRC
 * verification; the background repair worker drives
 * Fenced → Repairing → Live when the rebuild succeeds, or → Condemned
 * (permanently read-only, persisted across mounts) when the repair
 * budget is exhausted.
 */
enum class FileHealthState {
    Live,
    Fenced,     ///< fault budget exhausted; awaiting repair
    Repairing,  ///< online salvage rebuild in progress
    Condemned,  ///< repair failed terminally; read-only forever
};

/** Per-file-system consistency guarantee, used in bench labels. */
enum class ConsistencyLevel {
    MetadataOnly,      ///< Ext4-DAX: data can be torn by a crash
    SyncAtomic,        ///< Libnvmmio: atomic up to the last sync
    OperationAtomic,   ///< MGSP / NOVA: every write is atomic
};

/** A handle to an open file. */
class File
{
  public:
    virtual ~File() = default;

    /**
     * Reads up to dst.size() bytes from @p offset.
     * @return bytes read (short count at EOF).
     *
     * Engines backed by faulty media may return StatusCode::MediaError
     * when the range overlaps an uncorrectable region. The error is
     * returned only after the engine's own bounded retry (MGSP:
     * MgspConfig::mediaErrorRetries) has failed, so callers should
     * treat it as persistent for that range, not retry-looping on it.
     * @p dst may then hold partially copied (poison-pattern) bytes.
     */
    virtual StatusOr<u64> pread(u64 offset, MutSlice dst) = 0;

    /** Writes src at @p offset, extending the file if needed. */
    virtual Status pwrite(u64 offset, ConstSlice src) = 0;

    /**
     * Vectored read: fills @p spans with consecutive bytes starting
     * at @p offset (spans lay end-to-end, POSIX preadv style).
     * @return total bytes read (short count at EOF).
     *
     * The default loops over pread(); engines may override.
     */
    virtual StatusOr<u64>
    preadv(u64 offset, const std::vector<MutSlice> &spans)
    {
        u64 total = 0;
        for (const MutSlice &s : spans) {
            if (s.empty())
                continue;
            StatusOr<u64> n = pread(offset + total, s);
            if (!n.isOk())
                return n.status();
            total += *n;
            if (*n < s.size())
                break;  // EOF
        }
        return total;
    }

    /**
     * Vectored write: stores @p spans end-to-end starting at
     * @p offset. The default loops over pwrite(), so each span gets
     * this engine's per-write guarantee but the combination does not;
     * MGSP overrides it to commit the whole vector as ONE
     * failure-atomic unit when it fits a single metadata-log entry.
     */
    virtual Status
    pwritev(u64 offset, const std::vector<ConstSlice> &spans)
    {
        u64 pos = offset;
        for (const ConstSlice &s : spans) {
            if (s.empty())
                continue;
            MGSP_RETURN_IF_ERROR(pwrite(pos, s));
            pos += s.size();
        }
        return Status::ok();
    }

    /**
     * Declares this handle's expected access pattern. Purely advisory:
     * engines without a read cache accept and ignore it (the default),
     * so baselines and MemFs behave identically with or without
     * advice. MGSP honors DontCache (full bypass) and ReadMostly
     * (eager admission on first miss).
     */
    virtual Status
    advise(AccessHint hint)
    {
        (void)hint;
        return Status::ok();
    }

    /** Makes all completed writes durable. */
    virtual Status sync() = 0;

    /**
     * Ranged durability point: makes completed writes overlapping
     * [offset, offset+len) durable and failure-atomic as of the call.
     * A range past the end of the mapping (here: the file) is
     * InvalidArgument, like msync on unmapped pages. The default
     * delegates to sync() — strictly stronger — so every engine
     * supports the call; MGSP overrides it with a cheaper ranged
     * barrier over the capacity region (a single-file degenerate
     * transaction; see mgsp_msync() below and DESIGN.md §17). A zero
     * @p len is a no-op.
     */
    virtual Status
    rangeSync(u64 offset, u64 len)
    {
        if (offset + len < offset || offset + len > size())
            return Status::invalidArgument(
                "range sync beyond end of file");
        if (len == 0)
            return Status::ok();
        return sync();
    }

    /**
     * This file's fence state. Engines without fault containment are
     * always Live (the default); MGSP reports the per-inode health
     * lifecycle (DESIGN.md §18).
     */
    virtual FileHealthState
    health() const
    {
        return FileHealthState::Live;
    }

    /** Current file length in bytes. */
    virtual u64 size() const = 0;

    /** Sets the file length (zero-fills on extension). */
    virtual Status truncate(u64 new_size) = 0;
};

/**
 * A cross-file failure-atomic transaction, obtained from
 * FileSystem::beginTxn(). Writes staged through the handle become
 * visible and durable all-or-nothing across every participating file
 * when commit() returns Ok: a crash at any point leaves either all of
 * the transaction's writes applied or none of them (DESIGN.md §17).
 *
 * Usage: stage writes with pwrite() (each participant file must
 * belong to the file system that issued the handle), then call
 * commit() exactly once. abort() (or destruction before commit)
 * discards the staged writes without touching the files. A handle is
 * spent after commit() or abort(); further calls return
 * InvalidArgument. Handles are not thread-safe — one committer per
 * handle; concurrent transactions use separate handles.
 *
 * commit() can fail with ResourceBusy (EAGAIN at the vfs boundary)
 * when a transient internal resource — a metadata-log entry or the
 * txn-commit slot table — stays exhausted past the engine's bounded
 * retry. The staged writes are rolled back and the files are
 * untouched; the caller may retry the whole transaction.
 */
class FileTxn
{
  public:
    virtual ~FileTxn() = default;

    /** Stages @p src at @p offset of @p file as part of this txn. */
    virtual Status pwrite(File *file, u64 offset, ConstSlice src) = 0;

    /** Two-phase commit of every staged write; spends the handle. */
    virtual Status commit() = 0;

    /** Discards every staged write; spends the handle. */
    virtual Status abort() = 0;
};

/** A mountable file system / storage engine. */
class FileSystem
{
  public:
    virtual ~FileSystem() = default;

    /** Engine name for bench output ("mgsp", "ext4-dax", ...). */
    virtual const char *name() const = 0;

    /** Consistency guarantee this engine provides. */
    virtual ConsistencyLevel consistency() const = 0;

    /** Opens (optionally creating) @p path. */
    virtual StatusOr<std::unique_ptr<File>>
    open(const std::string &path, const OpenOptions &options) = 0;

    /** Removes @p path. */
    virtual Status remove(const std::string &path) = 0;

    /** @return true iff @p path exists. */
    virtual bool exists(const std::string &path) const = 0;

    /** Logical bytes the application asked this FS to write. */
    virtual u64 logicalBytesWritten() const = 0;

    /**
     * Read-cache counter snapshot; all-zero for engines without a
     * cache (the default).
     */
    virtual CacheStats
    cacheStats() const
    {
        return CacheStats{};
    }

    /**
     * Drops every clean read-cache frame (a no-op for engines without
     * a cache). Never discards dirty state: MGSP's cache is read-only
     * so this cannot lose data on any engine.
     */
    virtual Status
    dropCaches()
    {
        return Status::ok();
    }

    /**
     * Begins a cross-file failure-atomic transaction (see FileTxn).
     * Engines without multi-file atomicity return Unsupported (the
     * default), which statusToErrno() maps to ENOTSUP so callers can
     * fall back to their own journaling.
     */
    virtual StatusOr<std::unique_ptr<FileTxn>>
    beginTxn()
    {
        return Status::unsupported(
            "engine has no cross-file transactions");
    }

    /**
     * Engine-wide health. Engines without fault containment are
     * always Healthy (the default); MGSP reports the monotonic
     * health state machine (DESIGN.md §18).
     */
    virtual HealthState
    health() const
    {
        return HealthState::Healthy;
    }

    /**
     * Registers a callback invoked on every engine-wide health
     * transition (with no engine locks held, so the callback may call
     * back into the fs). One callback per fs; a later registration
     * replaces the earlier one. The default discards it — engines
     * that never change state never notify.
     */
    virtual void
    onHealthChange(std::function<void(HealthState)> cb)
    {
        (void)cb;
    }
};

/**
 * msync(2)-shaped entry point: makes completed writes overlapping
 * [offset, offset+len) of @p file durable and failure-atomic as of
 * the call. Thin sugar over File::rangeSync() so mmap-shaped callers
 * get the familiar (addr, len) signature; on MGSP this is a ranged
 * barrier (a degenerate single-file transaction), elsewhere a full
 * sync(). Returns 0 or -errno, POSIX style.
 */
inline int
mgsp_msync(File *file, u64 offset, u64 len)
{
    const Status s = file->rangeSync(offset, len);
    return s.isOk() ? 0 : -statusToErrno(s);
}

}  // namespace mgsp

#endif  // MGSP_VFS_VFS_H
