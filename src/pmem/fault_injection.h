/**
 * @file
 * Deterministic media-fault injection for the emulated pmem device.
 *
 * The crash-point harness (DESIGN.md §9) exercises *clean* power
 * failures: every store that survives is a store the program issued.
 * Real NVM also fails dirty — bit rot in persisted lines, torn
 * non-atomic stores, and uncorrectable (poisoned) lines that machine-
 * check on load instead of returning data. A FaultPlan scripts such
 * failures against a PmemDevice deterministically (seeded), so a test
 * can replay the exact same fault at the exact same persist boundary
 * and assert on the recovery outcome.
 *
 * Fault model (DESIGN.md §12):
 *
 *  - BitFlip: at persist boundary `atSeq`, flip `bitFlips` seeded bit
 *    positions inside [off, off+len) in both the program view and the
 *    durable media. Models retention errors / rot below the ECC
 *    detection threshold: reads succeed and return wrong bytes, so
 *    only checksums can catch it.
 *  - TornStore: the first store64() targeting `off` at or after
 *    persist boundary `atSeq` writes only half of its 8 bytes (seeded
 *    choice of halves). Models hardware without 8-byte store
 *    atomicity failing mid-store.
 *  - Poison: at `atSeq`, [off, off+len) becomes uncorrectable: the
 *    bytes are overwritten with kPoisonFill and every PmemDevice::read
 *    overlapping the range invokes the media-error hook (the software
 *    analogue of a DAX SIGBUS). If healAfterReads > 0, the range
 *    heals — original bytes restored, reads succeed — after that many
 *    faulting reads, modelling transient UC errors that a bounded
 *    retry can ride out.
 *
 * atSeq == 0 applies the fault immediately when the plan is armed.
 */
#ifndef MGSP_PMEM_FAULT_INJECTION_H
#define MGSP_PMEM_FAULT_INJECTION_H

#include <vector>

#include "common/types.h"

namespace mgsp {

/**
 * Fill pattern for poisoned bytes. Chosen so metadata read through a
 * poisoned line is self-evidently dead: bit 0 is clear, so in-use
 * flags (inode kInUse, node-record info) decode as "free", and any
 * checksummed structure fails validation.
 */
inline constexpr u8 kPoisonFill = 0xEE;

/** What kind of media failure a FaultSpec injects. */
enum class FaultKind : u8 {
    BitFlip,    ///< silent bit corruption in persisted bytes
    TornStore,  ///< an 8-byte store64 lands only halfway
    Poison,     ///< range machine-checks on read until healed
};

/** One scripted fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::BitFlip;

    /**
     * Persist boundary (PmemDevice::persistSeq) at which the fault
     * arms/fires; 0 = immediately on setFaultPlan(). For TornStore
     * this is the boundary after which the next store64 to `off`
     * tears (the tear itself happens at that store).
     */
    u64 atSeq = 0;

    u64 off = 0;  ///< range start (TornStore: the 8-aligned store addr)
    u64 len = 0;  ///< range length (ignored for TornStore; treated as 8)

    u32 bitFlips = 1;  ///< BitFlip: number of seeded bit positions

    /**
     * Poison: number of faulting reads after which the range heals
     * (original contents restored). 0 = permanent poison.
     */
    u32 healAfterReads = 0;
};

/** A deterministic scripted sequence of faults. */
struct FaultPlan
{
    u64 seed = 1;  ///< drives bit positions and torn-half choices
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
};

/** Counters the device keeps about injected faults and hits. */
struct FaultStats
{
    u64 bitFlipsInjected = 0;   ///< individual bits flipped
    u64 tornStores = 0;         ///< store64s torn
    u64 rangesPoisoned = 0;     ///< poison faults applied
    u64 poisonReadHits = 0;     ///< read()s that hit a poisoned range
    u64 rangesHealed = 0;       ///< transient poisons healed
};

}  // namespace mgsp

#endif  // MGSP_PMEM_FAULT_INJECTION_H
