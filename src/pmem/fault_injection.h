/**
 * @file
 * Deterministic media-fault injection for the emulated pmem device.
 *
 * The crash-point harness (DESIGN.md §9) exercises *clean* power
 * failures: every store that survives is a store the program issued.
 * Real NVM also fails dirty — bit rot in persisted lines, torn
 * non-atomic stores, and uncorrectable (poisoned) lines that machine-
 * check on load instead of returning data. A FaultPlan scripts such
 * failures against a PmemDevice deterministically (seeded), so a test
 * can replay the exact same fault at the exact same persist boundary
 * and assert on the recovery outcome.
 *
 * Fault model (DESIGN.md §12):
 *
 *  - BitFlip: at persist boundary `atSeq`, flip `bitFlips` seeded bit
 *    positions inside [off, off+len) in both the program view and the
 *    durable media. Models retention errors / rot below the ECC
 *    detection threshold: reads succeed and return wrong bytes, so
 *    only checksums can catch it.
 *  - TornStore: the first store64() targeting `off` at or after
 *    persist boundary `atSeq` writes only half of its 8 bytes (seeded
 *    choice of halves). Models hardware without 8-byte store
 *    atomicity failing mid-store.
 *  - Poison: at `atSeq`, [off, off+len) becomes uncorrectable: the
 *    bytes are overwritten with kPoisonFill and every PmemDevice::read
 *    overlapping the range invokes the media-error hook (the software
 *    analogue of a DAX SIGBUS). If healAfterReads > 0, the range
 *    heals — original bytes restored, reads succeed — after that many
 *    faulting reads, modelling transient UC errors that a bounded
 *    retry can ride out.
 *
 * atSeq == 0 applies the fault immediately when the plan is armed.
 *
 * Besides media faults, this header also defines the *resource* fault
 * plane (ResourceFaultPlan): scripted allocation failures and stalls
 * at the internal allocators — PmemPool::alloc, NodeTable::allocRecord,
 * MetadataLog::claim and the inode / file-area allocators — so every
 * exhaustion path (bounded retry, backoff, watchdog, degraded
 * write-through; DESIGN.md §13) is deterministically testable without
 * actually filling the arena.
 */
#ifndef MGSP_PMEM_FAULT_INJECTION_H
#define MGSP_PMEM_FAULT_INJECTION_H

#include <atomic>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace mgsp {

/**
 * Fill pattern for poisoned bytes. Chosen so metadata read through a
 * poisoned line is self-evidently dead: bit 0 is clear, so in-use
 * flags (inode kInUse, node-record info) decode as "free", and any
 * checksummed structure fails validation.
 */
inline constexpr u8 kPoisonFill = 0xEE;

/** What kind of media failure a FaultSpec injects. */
enum class FaultKind : u8 {
    BitFlip,    ///< silent bit corruption in persisted bytes
    TornStore,  ///< an 8-byte store64 lands only halfway
    Poison,     ///< range machine-checks on read until healed
};

/** One scripted fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::BitFlip;

    /**
     * Persist boundary (PmemDevice::persistSeq) at which the fault
     * arms/fires; 0 = immediately on setFaultPlan(). For TornStore
     * this is the boundary after which the next store64 to `off`
     * tears (the tear itself happens at that store).
     */
    u64 atSeq = 0;

    u64 off = 0;  ///< range start (TornStore: the 8-aligned store addr)
    u64 len = 0;  ///< range length (ignored for TornStore; treated as 8)

    u32 bitFlips = 1;  ///< BitFlip: number of seeded bit positions

    /**
     * Poison: number of faulting reads after which the range heals
     * (original contents restored). 0 = permanent poison.
     */
    u32 healAfterReads = 0;
};

/** A deterministic scripted sequence of faults. */
struct FaultPlan
{
    u64 seed = 1;  ///< drives bit positions and torn-half choices
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
};

/** Counters the device keeps about injected faults and hits. */
struct FaultStats
{
    u64 bitFlipsInjected = 0;   ///< individual bits flipped
    u64 tornStores = 0;         ///< store64s torn
    u64 rangesPoisoned = 0;     ///< poison faults applied
    u64 poisonReadHits = 0;     ///< read()s that hit a poisoned range
    u64 rangesHealed = 0;       ///< transient poisons healed
};

// ====================================================================
// Resource (allocation) fault plane
// ====================================================================

/** Which internal allocator a ResourceFaultSpec targets. */
enum class ResourceSite : u8 {
    PoolAlloc,      ///< PmemPool::alloc (shadow-log blocks)
    NodeAlloc,      ///< NodeTable::allocRecord
    MetaClaim,      ///< MetadataLog::claim
    InodeAlloc,     ///< inode-table slot allocation (open/create)
    FileAreaAlloc,  ///< file-area extent allocation (open/create)
};

inline constexpr u32 kResourceSiteCount = 5;

/** @return a stable human-readable name for @p site. */
inline const char *
resourceSiteName(ResourceSite site)
{
    switch (site) {
      case ResourceSite::PoolAlloc: return "pool_alloc";
      case ResourceSite::NodeAlloc: return "node_alloc";
      case ResourceSite::MetaClaim: return "meta_claim";
      case ResourceSite::InodeAlloc: return "inode_alloc";
      case ResourceSite::FileAreaAlloc: return "file_area_alloc";
    }
    return "unknown";
}

/** How a resource fault manifests. */
enum class ResourceFaultKind : u8 {
    Fail,   ///< the call reports exhaustion (OutOfSpace/ResourceBusy)
    Stall,  ///< the call blocks stallNanos first, then proceeds
};

/**
 * One scripted allocation fault. Calls are counted per site (0-based,
 * across all threads); the spec fires on call indices
 * [atCall, atCall + count).
 */
struct ResourceFaultSpec
{
    ResourceSite site = ResourceSite::PoolAlloc;
    ResourceFaultKind kind = ResourceFaultKind::Fail;

    u64 atCall = 0;  ///< first 0-based call index that fires
    /** Number of consecutive calls that fire; kEveryCall = forever. */
    u64 count = 1;
    u64 stallNanos = 0;  ///< Stall: how long the call blocks

    static constexpr u64 kEveryCall = ~0ull;
};

/** A deterministic scripted sequence of allocation faults. */
struct ResourceFaultPlan
{
    /**
     * Recorded for reproduction lines; the plan itself is fully
     * scripted (tests derive their call windows from MGSP_TEST_SEED).
     */
    u64 seed = 1;
    std::vector<ResourceFaultSpec> faults;

    bool empty() const { return faults.empty(); }
};

/** What the injector tallied (test assertions / diagnostics). */
struct ResourceFaultStats
{
    u64 failsInjected = 0;
    u64 stallsInjected = 0;
    u64 stallNanosInjected = 0;
};

/**
 * Evaluates a ResourceFaultPlan at allocator call sites. Thread safe:
 * per-site call counters are atomic and the plan is immutable after
 * construction. Components hold a raw pointer distributed by
 * MgspFs::setResourceFaultPlan() (null = no injection, zero cost
 * beyond one branch).
 */
class ResourceFaultInjector
{
  public:
    explicit ResourceFaultInjector(ResourceFaultPlan plan)
        : plan_(std::move(plan))
    {
    }

    /**
     * Advances @p site's call counter and applies whatever the plan
     * scripts for this call: a scripted stall blocks right here (spin
     * on the monotonic clock — deliberately independent of the
     * injected-latency gate, which tests disable).
     *
     * @return true iff the call must fail with exhaustion.
     */
    bool
    onCall(ResourceSite site)
    {
        const u64 call = callCount_[static_cast<u32>(site)].fetch_add(
            1, std::memory_order_relaxed);
        bool fail = false;
        for (const ResourceFaultSpec &spec : plan_.faults) {
            if (spec.site != site || call < spec.atCall)
                continue;
            if (spec.count != ResourceFaultSpec::kEveryCall &&
                call >= spec.atCall + spec.count)
                continue;
            if (spec.kind == ResourceFaultKind::Stall) {
                stallsInjected_.fetch_add(1, std::memory_order_relaxed);
                stallNanosInjected_.fetch_add(spec.stallNanos,
                                              std::memory_order_relaxed);
                const u64 until = monotonicNanos() + spec.stallNanos;
                while (monotonicNanos() < until) {
                }
            } else {
                fail = true;
            }
        }
        if (fail)
            failsInjected_.fetch_add(1, std::memory_order_relaxed);
        return fail;
    }

    /** Calls @p site has seen so far. */
    u64
    callCount(ResourceSite site) const
    {
        return callCount_[static_cast<u32>(site)].load(
            std::memory_order_relaxed);
    }

    ResourceFaultStats
    stats() const
    {
        ResourceFaultStats s;
        s.failsInjected = failsInjected_.load(std::memory_order_relaxed);
        s.stallsInjected = stallsInjected_.load(std::memory_order_relaxed);
        s.stallNanosInjected =
            stallNanosInjected_.load(std::memory_order_relaxed);
        return s;
    }

    const ResourceFaultPlan &plan() const { return plan_; }

  private:
    const ResourceFaultPlan plan_;
    std::atomic<u64> callCount_[kResourceSiteCount]{};
    std::atomic<u64> failsInjected_{0};
    std::atomic<u64> stallsInjected_{0};
    std::atomic<u64> stallNanosInjected_{0};
};

}  // namespace mgsp

#endif  // MGSP_PMEM_FAULT_INJECTION_H
