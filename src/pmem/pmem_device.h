/**
 * @file
 * Emulated byte-addressable persistent memory with x86-style
 * persistence semantics and crash simulation.
 *
 * The paper's testbed is Intel Optane DC PMem accessed through PMDK.
 * This device substitutes DRAM for the media (as the paper's artifact
 * appendix sanctions) while preserving exactly the properties the
 * algorithms rely on:
 *
 *  - byte addressability and 8-byte atomic stores;
 *  - the clwb/sfence persistence model: a store is *guaranteed*
 *    durable only after it is flushed and a subsequent fence retires,
 *    but it *may* become durable earlier (cache eviction);
 *  - accounting of every byte written, flushed and fenced, used by the
 *    write-amplification experiment (Table II).
 *
 * Two modes:
 *  - Flat: stores hit the media immediately; flush/fence only update
 *    counters and charge model latency. Used by benchmarks.
 *  - Tracked: stores land in a volatile overlay; flush+fence moves
 *    cache lines to the media. captureCrashImage() produces the media
 *    state plus an arbitrary (seeded) subset of not-yet-fenced dirty
 *    lines, modelling both store reordering and spontaneous eviction.
 *    Used by the crash-consistency test harness.
 */
#ifndef MGSP_PMEM_PMEM_DEVICE_H
#define MGSP_PMEM_PMEM_DEVICE_H

#include <atomic>
#include <functional>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/slice.h"
#include "common/types.h"
#include "pmem/fault_injection.h"
#include "pmem/latency_model.h"

namespace mgsp {

/** Counters a device accumulates; basis of Table II. */
struct PmemStats
{
    std::atomic<u64> bytesWritten{0};   ///< bytes stored to the device
    std::atomic<u64> bytesFlushed{0};   ///< bytes covered by flushes
    std::atomic<u64> flushedLines{0};   ///< cache lines flushed
    std::atomic<u64> fences{0};         ///< persistence fences issued

    void
    reset()
    {
        bytesWritten = 0;
        bytesFlushed = 0;
        flushedLines = 0;
        fences = 0;
    }
};

/** Snapshot of the media contents after a simulated crash. */
struct CrashImage
{
    std::vector<u8> media;
};

/** Which persistence primitive a PersistHook observed. */
enum class PersistPoint : u8 {
    Flush,  ///< after flush(off, len) with len > 0
    Fence,  ///< after fence() retired pending lines
};

/**
 * Called after every flush/fence with that boundary's sequence
 * number. The crash-point enumeration harness uses this to visit
 * *every* persist boundary of a workload: the hook may call
 * captureCrashImage() (the device is no longer holding its internal
 * lock when the hook runs) and record the image for later recovery
 * checks. Must not re-enter flush()/fence() on the same device.
 */
using PersistHook = std::function<void(u64 seq, PersistPoint point)>;

/**
 * Called (outside the device's fault lock) each time a read() hits a
 * poisoned range — the software analogue of a DAX SIGBUS / machine
 * check. Arguments are the poisoned overlap actually touched.
 */
using MediaErrorHook = std::function<void(u64 off, u64 len)>;

/**
 * The emulated device. All mutation must go through the store
 * methods so that tracked mode sees every write; reads may use the
 * raw pointer for zero-cost loads (the volatile view is always
 * coherent with program order).
 */
class PmemDevice
{
  public:
    enum class Mode { Flat, Tracked };

    /**
     * Creates a zeroed device of @p size bytes.
     *
     * @param size      arena size in bytes.
     * @param mode      Flat for benchmarks, Tracked for crash tests.
     * @param model     media cost model; copied.
     */
    explicit PmemDevice(u64 size, Mode mode = Mode::Flat,
                        LatencyModel model = LatencyModel{});

    /** Restores a device from a crash image (size = image size). */
    PmemDevice(const CrashImage &image, Mode mode,
               LatencyModel model = LatencyModel{});

    PmemDevice(const PmemDevice &) = delete;
    PmemDevice &operator=(const PmemDevice &) = delete;

    u64 size() const { return size_; }
    Mode mode() const { return mode_; }
    const LatencyModel &latency() const { return model_; }
    PmemStats &stats() { return stats_; }

    /**
     * Read-only pointer into the current (volatile) view. Bypasses
     * poison detection entirely: callers reading through the raw
     * pointer must query poisoned() themselves if the range may carry
     * media faults (poisoned bytes read as kPoisonFill, with no hook
     * invocation and no heal-count progress).
     */
    const u8 *
    rawRead(u64 off) const
    {
        return view_.data() + off;
    }

    /**
     * Copies @p len bytes at @p off into @p dst.
     *
     * Memory ordering: a plain memcpy from the coherent view — it
     * synchronises with nothing. Writers racing with this read may
     * yield torn bytes; callers needing ordering against a publisher
     * must pair a load64 (acquire) of the publishing word with the
     * writer's store64 (release) before trusting the copied bytes.
     *
     * Fault semantics: if the range overlaps a poisoned (UC) range,
     * the overlap reads as kPoisonFill, the media-error hook fires
     * once per overlapping poison range, and transient poisons make
     * heal progress (see FaultSpec::healAfterReads). The read itself
     * still completes — the caller decides whether to fail by
     * checking poisoned() before/after, as ShadowTree::readLog does.
     */
    void read(u64 off, void *dst, u64 len) const;

    /**
     * read() for callers that tolerate racing writers: the seqlock-
     * validated optimistic read path, which copies first and discards
     * torn data on version mismatch. Under ThreadSanitizer this copy
     * is exempted from race detection (the race is the design), so
     * the locked paths keep full race coverage.
     *
     * Memory ordering: none — weaker than read() even in principle;
     * the caller's seqlock re-validation (acquire loads on the node
     * version) is the only thing standing between the copied bytes
     * and a torn view, and it must reject the copy on mismatch.
     *
     * Fault semantics: unlike read(), racyRead never invokes the
     * media-error hook and never advances heal counts — the
     * optimistic path instead bails to the locked path when
     * poisoned() reports an overlap (see optimisticRegionRead), so
     * every poison hit is surfaced exactly once, by the locked read.
     */
    void racyRead(u64 off, void *dst, u64 len) const;

    /** Stores @p len bytes from @p src at @p off (not yet durable). */
    void write(u64 off, const void *src, u64 len);

    /** Fills [off, off+len) with @p byte. */
    void fill(u64 off, u8 byte, u64 len);

    /** 8-byte atomic load with acquire ordering. @p off 8-aligned. */
    u64 load64(u64 off) const;

    /** 8-byte atomic store with release ordering. @p off 8-aligned. */
    void store64(u64 off, u64 value);

    /**
     * 8-byte compare-and-swap at @p off.
     * @return true and installs @p desired iff the current value was
     *         @p expected; otherwise updates @p expected.
     */
    bool cas64(u64 off, u64 &expected, u64 desired);

    /** 8-byte atomic fetch-or; returns the previous value. */
    u64 fetchOr64(u64 off, u64 bits);

    /** Queues the cache lines covering [off, off+len) for persistence. */
    void flush(u64 off, u64 len);

    /** Retires all queued flushes; after this they are durable. */
    void fence();

    /** flush() + fence() — one persistence point. */
    void
    persist(u64 off, u64 len)
    {
        flush(off, len);
        fence();
    }

    /**
     * Tracked mode: produces the media state of a crash happening now.
     *
     * Every line made durable by a fence is present. Each dirty line
     * not yet fenced (including flushed-but-unfenced lines) survives
     * independently with probability @p evictionProb, drawn from
     * @p rng — modelling cache eviction and WPQ drain races.
     */
    CrashImage captureCrashImage(Rng &rng, double evictionProb) const;

    /** Tracked mode: number of dirty (not yet durable) cache lines. */
    u64 dirtyLineCount() const;

    /**
     * Installs @p hook (empty = remove). Not synchronised against
     * in-flight flush/fence: install before the workload starts.
     */
    void setPersistHook(PersistHook hook) { persistHook_ = std::move(hook); }

    /** Persist boundaries (flushes + fences) seen so far. */
    u64
    persistSeq() const
    {
        return persistSeq_.load(std::memory_order_relaxed);
    }

    // ---- media-fault injection (DESIGN.md §12) ------------------

    /**
     * Arms @p plan (replacing any previous one). Faults with
     * atSeq == 0 (or <= the current persistSeq) apply immediately;
     * the rest fire as flush()/fence() advance persistSeq. Not
     * synchronised against in-flight operations: arm before the
     * workload starts, like setPersistHook().
     */
    void setFaultPlan(FaultPlan plan);

    /** Installs @p hook (empty = remove); see MediaErrorHook. */
    void setMediaErrorHook(MediaErrorHook hook)
    {
        mediaErrorHook_ = std::move(hook);
    }

    /**
     * @return true iff [off, off+len) overlaps a currently-poisoned
     * range. A pure query: no hook, no heal progress. O(1) when no
     * poison was ever armed (one relaxed load).
     */
    bool poisoned(u64 off, u64 len) const;

    /**
     * Like poisoned(), but a *hit*: fires the media-error hook and
     * advances heal counts for each overlapping range, exactly as an
     * overlapping read() would. Lets raw-pointer readers opt into
     * full fault semantics.
     */
    bool hitPoison(u64 off, u64 len) const;

    /**
     * @return true iff any poison is currently armed anywhere on the
     * device. One relaxed load; the read cache uses it to bypass
     * serving/filling while media faults are live (a heal restores
     * the pristine bytes, so frames filled before the poison armed
     * stay correct once it clears).
     */
    bool
    anyPoisoned() const
    {
        return poisonCount_.load(std::memory_order_relaxed) != 0;
    }

    /** Snapshot of fault counters (also mirrored to fault.* stats). */
    FaultStats faultStats() const;

  private:
    void applyDueFaults(u64 seq);
    bool pokePoison(u64 off, u64 len, bool hit) const;
    u64 maybeTearStore(u64 off, u64 value);
    u64 size_;
    Mode mode_;
    LatencyModel model_;
    PmemStats stats_;

    /// The program-visible view. In Flat mode this *is* the media.
    std::vector<u8> view_;
    /// Tracked mode only: bytes guaranteed durable.
    std::vector<u8> media_;

    /// Tracked mode: lines stored since their last fence.
    mutable std::mutex trackMutex_;
    std::unordered_set<u64> dirtyLines_;
    std::unordered_set<u64> pendingLines_;  ///< flushed, awaiting fence

    PersistHook persistHook_;
    std::atomic<u64> persistSeq_{0};

    // ---- fault-injection state --------------------------------------
    /// A poisoned range plus the pristine bytes restored on heal.
    struct PoisonRange
    {
        u64 off;
        u64 len;
        u32 healAfterReads;  ///< 0 = permanent
        std::vector<u8> saved;
    };

    /// Guards every field below. Fast paths skip it via the armed
    /// counters: no fault plan, no overhead beyond one relaxed load.
    mutable std::mutex faultMutex_;
    std::vector<FaultSpec> pendingFaults_;  ///< not yet fired
    mutable std::vector<PoisonRange> poison_;
    mutable Rng faultRng_{1};
    mutable FaultStats faultStats_;
    MediaErrorHook mediaErrorHook_;

    std::atomic<u32> pendingFaultCount_{0};  ///< flush/fence fast path
    std::atomic<u32> armedTearCount_{0};     ///< store64 fast path
    /// Read fast path; mutable because healing (a fault-state
    /// transition) happens on the const read path.
    mutable std::atomic<u32> poisonCount_{0};
};

}  // namespace mgsp

#endif  // MGSP_PMEM_PMEM_DEVICE_H
