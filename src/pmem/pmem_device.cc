#include "pmem/pmem_device.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/align.h"
#include "common/logging.h"
#include "common/racy_copy.h"
#include "common/stats.h"

namespace mgsp {

namespace {

/**
 * Publishes the device's latency constants into the stats metadata
 * header (once; every device in a process shares the compiled-in
 * defaults unless a test overrides them, and the first device's
 * constants are the ones benches run under). Makes BENCH_*.json
 * self-describing: a regression caused by retuning the cost model is
 * distinguishable from a code regression.
 */
void
registerLatencyMetadata(const LatencyModel &m)
{
    static std::once_flag once;
    std::call_once(once, [&m] {
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "{\"read_base_ns\":%llu,\"read_per_256b_ns\":%llu,"
            "\"write_per_256b_ns\":%llu,\"flush_per_line_ns\":%llu,"
            "\"fence_ns\":%llu,\"syscall_ns\":%llu,"
            "\"kernel_fs_path_ns\":%llu,\"tlb_shootdown_ns\":%llu}",
            static_cast<unsigned long long>(m.readBaseNanos),
            static_cast<unsigned long long>(m.readPer256BNanos),
            static_cast<unsigned long long>(m.writePer256BNanos),
            static_cast<unsigned long long>(m.flushPerLineNanos),
            static_cast<unsigned long long>(m.fenceNanos),
            static_cast<unsigned long long>(m.syscallNanos),
            static_cast<unsigned long long>(m.kernelFsPathNanos),
            static_cast<unsigned long long>(m.tlbShootdownNanos));
        stats::setMetadataField("latency_model", buf);
    });
}

}  // namespace

PmemDevice::PmemDevice(u64 size, Mode mode, LatencyModel model)
    : size_(size), mode_(mode), model_(model), view_(size, 0)
{
    registerLatencyMetadata(model_);
    if (mode_ == Mode::Tracked)
        media_.assign(size, 0);
}

PmemDevice::PmemDevice(const CrashImage &image, Mode mode,
                       LatencyModel model)
    : size_(image.media.size()), mode_(mode), model_(model),
      view_(image.media)
{
    registerLatencyMetadata(model_);
    if (mode_ == Mode::Tracked)
        media_ = image.media;
}

void
PmemDevice::read(u64 off, void *dst, u64 len) const
{
    MGSP_CHECK(off + len <= size_);
    std::memcpy(dst, view_.data() + off, len);
    if (poisonCount_.load(std::memory_order_relaxed) != 0)
        pokePoison(off, len, /*hit=*/true);
}

void
PmemDevice::racyRead(u64 off, void *dst, u64 len) const
{
    MGSP_CHECK(off + len <= size_);
    racyCopy(dst, view_.data() + off, len);
}

void
PmemDevice::write(u64 off, const void *src, u64 len)
{
    MGSP_CHECK(off + len <= size_);
    std::memcpy(view_.data() + off, src, len);
    stats_.bytesWritten.fetch_add(len, std::memory_order_relaxed);
    stats::chargeBytesWritten(len);
    model_.chargeWrite(len);
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        const u64 first = alignDown(off, kCacheLineSize);
        const u64 last = alignDown(off + len - 1, kCacheLineSize);
        for (u64 line = first; line <= last; line += kCacheLineSize)
            dirtyLines_.insert(line);
    }
}

void
PmemDevice::fill(u64 off, u8 byte, u64 len)
{
    MGSP_CHECK(off + len <= size_);
    std::memset(view_.data() + off, byte, len);
    stats_.bytesWritten.fetch_add(len, std::memory_order_relaxed);
    stats::chargeBytesWritten(len);
    model_.chargeWrite(len);
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        const u64 first = alignDown(off, kCacheLineSize);
        const u64 last = alignDown(off + len - 1, kCacheLineSize);
        for (u64 line = first; line <= last; line += kCacheLineSize)
            dirtyLines_.insert(line);
    }
}

u64
PmemDevice::load64(u64 off) const
{
    MGSP_CHECK(off + 8 <= size_ && isAligned(off, 8));
    const auto *p = reinterpret_cast<const std::atomic<u64> *>(
        view_.data() + off);
    return p->load(std::memory_order_acquire);
}

void
PmemDevice::store64(u64 off, u64 value)
{
    MGSP_CHECK(off + 8 <= size_ && isAligned(off, 8));
    if (armedTearCount_.load(std::memory_order_relaxed) != 0)
        value = maybeTearStore(off, value);
    auto *p = reinterpret_cast<std::atomic<u64> *>(view_.data() + off);
    p->store(value, std::memory_order_release);
    stats_.bytesWritten.fetch_add(8, std::memory_order_relaxed);
    stats::chargeBytesWritten(8);
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        dirtyLines_.insert(alignDown(off, kCacheLineSize));
    }
}

bool
PmemDevice::cas64(u64 off, u64 &expected, u64 desired)
{
    MGSP_CHECK(off + 8 <= size_ && isAligned(off, 8));
    auto *p = reinterpret_cast<std::atomic<u64> *>(view_.data() + off);
    bool ok = p->compare_exchange_strong(expected, desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
    if (ok) {
        stats_.bytesWritten.fetch_add(8, std::memory_order_relaxed);
        stats::chargeBytesWritten(8);
        if (mode_ == Mode::Tracked) {
            std::lock_guard<std::mutex> guard(trackMutex_);
            dirtyLines_.insert(alignDown(off, kCacheLineSize));
        }
    }
    return ok;
}

u64
PmemDevice::fetchOr64(u64 off, u64 bits)
{
    MGSP_CHECK(off + 8 <= size_ && isAligned(off, 8));
    auto *p = reinterpret_cast<std::atomic<u64> *>(view_.data() + off);
    u64 prev = p->fetch_or(bits, std::memory_order_acq_rel);
    stats_.bytesWritten.fetch_add(8, std::memory_order_relaxed);
    stats::chargeBytesWritten(8);
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        dirtyLines_.insert(alignDown(off, kCacheLineSize));
    }
    return prev;
}

void
PmemDevice::flush(u64 off, u64 len)
{
    if (len == 0)
        return;
    MGSP_CHECK(off + len <= size_);
    const u64 first = alignDown(off, kCacheLineSize);
    const u64 last = alignDown(off + len - 1, kCacheLineSize);
    const u64 lines = (last - first) / kCacheLineSize + 1;
    stats_.bytesFlushed.fetch_add(len, std::memory_order_relaxed);
    stats_.flushedLines.fetch_add(lines, std::memory_order_relaxed);
    stats::chargeBytesFlushed(len, lines);
    model_.chargeFlush(len);
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        for (u64 line = first; line <= last; line += kCacheLineSize) {
            auto it = dirtyLines_.find(line);
            if (it != dirtyLines_.end()) {
                dirtyLines_.erase(it);
                pendingLines_.insert(line);
            }
        }
    }
    const u64 seq = persistSeq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (pendingFaultCount_.load(std::memory_order_relaxed) != 0)
        applyDueFaults(seq);
    if (persistHook_)
        persistHook_(seq, PersistPoint::Flush);
}

void
PmemDevice::fence()
{
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    stats::chargeFence();
    model_.chargeFence();
    if (mode_ == Mode::Tracked) {
        std::lock_guard<std::mutex> guard(trackMutex_);
        for (u64 line : pendingLines_) {
            std::memcpy(media_.data() + line, view_.data() + line,
                        kCacheLineSize);
        }
        pendingLines_.clear();
    }
    const u64 seq = persistSeq_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (pendingFaultCount_.load(std::memory_order_relaxed) != 0)
        applyDueFaults(seq);
    if (persistHook_)
        persistHook_(seq, PersistPoint::Fence);
}

CrashImage
PmemDevice::captureCrashImage(Rng &rng, double evictionProb) const
{
    MGSP_CHECK(mode_ == Mode::Tracked);
    std::lock_guard<std::mutex> guard(trackMutex_);
    CrashImage image;
    image.media = media_;
    auto maybeSurvive = [&](u64 line) {
        if (rng.nextBool(evictionProb)) {
            std::memcpy(image.media.data() + line, view_.data() + line,
                        kCacheLineSize);
        }
    };
    for (u64 line : pendingLines_)
        maybeSurvive(line);
    for (u64 line : dirtyLines_)
        maybeSurvive(line);
    return image;
}

u64
PmemDevice::dirtyLineCount() const
{
    std::lock_guard<std::mutex> guard(trackMutex_);
    return dirtyLines_.size() + pendingLines_.size();
}

// ---- media-fault injection --------------------------------------

void
PmemDevice::setFaultPlan(FaultPlan plan)
{
    {
        std::lock_guard<std::mutex> guard(faultMutex_);
        faultRng_ = Rng(plan.seed);
        pendingFaults_ = std::move(plan.faults);
        u32 tears = 0;
        for (const FaultSpec &f : pendingFaults_)
            if (f.kind == FaultKind::TornStore)
                ++tears;
        armedTearCount_.store(tears, std::memory_order_relaxed);
        pendingFaultCount_.store(static_cast<u32>(pendingFaults_.size()),
                                 std::memory_order_relaxed);
    }
    // Faults scheduled at (or before) the current boundary fire now.
    if (pendingFaultCount_.load(std::memory_order_relaxed) != 0)
        applyDueFaults(persistSeq());
}

void
PmemDevice::applyDueFaults(u64 seq)
{
    std::lock_guard<std::mutex> guard(faultMutex_);
    auto &reg = stats::StatsRegistry::instance();
    for (auto it = pendingFaults_.begin(); it != pendingFaults_.end();) {
        const FaultSpec &f = *it;
        // Torn stores stay armed until the matching store64 arrives.
        if (f.kind == FaultKind::TornStore || f.atSeq > seq) {
            ++it;
            continue;
        }
        MGSP_CHECK(f.off + f.len <= size_ && f.len > 0);
        if (f.kind == FaultKind::BitFlip) {
            for (u32 i = 0; i < f.bitFlips; ++i) {
                const u64 bit = faultRng_.nextBelow(f.len * 8);
                const u64 byte = f.off + bit / 8;
                const u8 mask = static_cast<u8>(1u << (bit % 8));
                view_[byte] ^= mask;
                if (mode_ == Mode::Tracked)
                    media_[byte] ^= mask;
            }
            faultStats_.bitFlipsInjected += f.bitFlips;
            reg.counter("fault.bit_flips").add(f.bitFlips);
        } else {  // Poison
            PoisonRange range;
            range.off = f.off;
            range.len = f.len;
            range.healAfterReads = f.healAfterReads;
            range.saved.assign(view_.begin() + f.off,
                               view_.begin() + f.off + f.len);
            std::memset(view_.data() + f.off, kPoisonFill, f.len);
            if (mode_ == Mode::Tracked)
                std::memset(media_.data() + f.off, kPoisonFill, f.len);
            poison_.push_back(std::move(range));
            poisonCount_.fetch_add(1, std::memory_order_relaxed);
            faultStats_.rangesPoisoned++;
            reg.counter("fault.ranges_poisoned").add(1);
        }
        it = pendingFaults_.erase(it);
        pendingFaultCount_.fetch_sub(1, std::memory_order_relaxed);
    }
}

u64
PmemDevice::maybeTearStore(u64 off, u64 value)
{
    std::lock_guard<std::mutex> guard(faultMutex_);
    const u64 seq = persistSeq_.load(std::memory_order_relaxed);
    for (auto it = pendingFaults_.begin(); it != pendingFaults_.end(); ++it) {
        if (it->kind != FaultKind::TornStore || it->off != off ||
            it->atSeq > seq)
            continue;
        const auto *p =
            reinterpret_cast<const std::atomic<u64> *>(view_.data() + off);
        const u64 old = p->load(std::memory_order_relaxed);
        // Half the 8-byte store lands; which half is seeded.
        const u64 torn = faultRng_.nextBool()
                             ? ((value & 0xFFFFFFFFull) | (old & ~0xFFFFFFFFull))
                             : ((old & 0xFFFFFFFFull) | (value & ~0xFFFFFFFFull));
        pendingFaults_.erase(it);
        armedTearCount_.fetch_sub(1, std::memory_order_relaxed);
        pendingFaultCount_.fetch_sub(1, std::memory_order_relaxed);
        faultStats_.tornStores++;
        stats::StatsRegistry::instance().counter("fault.torn_stores").add(1);
        return torn;
    }
    return value;
}

bool
PmemDevice::pokePoison(u64 off, u64 len, bool hit) const
{
    struct Hit
    {
        u64 off;
        u64 len;
    };
    std::vector<Hit> hits;
    bool overlapped = false;
    {
        std::lock_guard<std::mutex> guard(faultMutex_);
        auto &reg = stats::StatsRegistry::instance();
        for (auto it = poison_.begin(); it != poison_.end();) {
            PoisonRange &r = *it;
            const u64 lo = std::max(off, r.off);
            const u64 hi = std::min(off + len, r.off + r.len);
            if (lo >= hi) {
                ++it;
                continue;
            }
            overlapped = true;
            if (!hit) {
                ++it;
                continue;
            }
            hits.push_back({lo, hi - lo});
            faultStats_.poisonReadHits++;
            reg.counter("fault.poison_read_hits").add(1);
            if (r.healAfterReads > 0 && --r.healAfterReads == 0) {
                // Transient fault rides out: restore pristine bytes.
                // (Healing is fault-state mutation, so it is allowed
                // from this const read path like the other mutable
                // fault fields.)
                auto *self = const_cast<PmemDevice *>(this);
                std::memcpy(self->view_.data() + r.off, r.saved.data(), r.len);
                if (mode_ == Mode::Tracked)
                    std::memcpy(self->media_.data() + r.off, r.saved.data(),
                                r.len);
                faultStats_.rangesHealed++;
                reg.counter("fault.ranges_healed").add(1);
                it = poison_.erase(it);
                poisonCount_.fetch_sub(1, std::memory_order_relaxed);
                continue;
            }
            ++it;
        }
    }
    if (mediaErrorHook_)
        for (const Hit &h : hits)
            mediaErrorHook_(h.off, h.len);
    return overlapped;
}

bool
PmemDevice::poisoned(u64 off, u64 len) const
{
    if (poisonCount_.load(std::memory_order_relaxed) == 0)
        return false;
    return pokePoison(off, len, /*hit=*/false);
}

bool
PmemDevice::hitPoison(u64 off, u64 len) const
{
    if (poisonCount_.load(std::memory_order_relaxed) == 0)
        return false;
    return pokePoison(off, len, /*hit=*/true);
}

FaultStats
PmemDevice::faultStats() const
{
    std::lock_guard<std::mutex> guard(faultMutex_);
    return faultStats_;
}

}  // namespace mgsp
