#include "pmem/pmem_pool.h"

#include <bit>
#include <mutex>

#include "common/align.h"
#include "common/logging.h"

namespace mgsp {

PmemPool::PmemPool(u64 base, std::vector<PoolClassConfig> configs)
    : base_(base), totalBytes_(0)
{
    MGSP_CHECK(!configs.empty());
    u64 cursor = base;
    u64 prev_cell = 0;
    for (const PoolClassConfig &cfg : configs) {
        MGSP_CHECK(isPowerOfTwo(cfg.cellSize));
        MGSP_CHECK(cfg.cellSize > prev_cell &&
                   "classes must be sorted by ascending cell size");
        prev_cell = cfg.cellSize;
        SizeClass &cls = classes_.emplace_back();
        cls.cellSize = cfg.cellSize;
        cls.regionBase = alignUp(cursor, cfg.cellSize);
        cls.cellCount = cfg.regionBytes / cfg.cellSize;
        cls.freeCount = cls.cellCount;
        cls.occupancy.assign(ceilDiv(cls.cellCount, 64), 0);
        cursor = cls.regionBase + cls.cellCount * cls.cellSize;
        cellBytes_ += cls.cellCount * cls.cellSize;
    }
    totalBytes_ = cursor - base;
    freeBytesApprox_.store(cellBytes_, std::memory_order_relaxed);
}

int
PmemPool::classIndexFor(u64 size) const
{
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        if (classes_[i].cellSize >= size)
            return static_cast<int>(i);
    }
    return -1;
}

int
PmemPool::classIndexOwning(u64 off) const
{
    for (std::size_t i = 0; i < classes_.size(); ++i) {
        const SizeClass &cls = classes_[i];
        if (off >= cls.regionBase &&
            off < cls.regionBase + cls.cellCount * cls.cellSize)
            return static_cast<int>(i);
    }
    return -1;
}

StatusOr<u64>
PmemPool::alloc(u64 size)
{
    if (injector_ != nullptr &&
        injector_->onCall(ResourceSite::PoolAlloc))
        return Status::outOfSpace("injected pool allocation fault");
    const int idx = classIndexFor(size);
    if (idx < 0) {
        return Status::invalidArgument(
            "allocation larger than the largest pool class");
    }
    SizeClass &cls = classes_[idx];
    std::lock_guard<SpinLock> guard(cls.lock);
    if (cls.freeCount == 0)
        return Status::outOfSpace("pool class exhausted");
    const u64 words = cls.occupancy.size();
    u64 word = cls.nextHint;
    for (u64 scanned = 0; scanned <= words; ++scanned, ++word) {
        if (word >= words)
            word = 0;
        u64 bits = cls.occupancy[word];
        if (bits == ~0ull)
            continue;
        const unsigned bit = std::countr_one(bits);
        const u64 cell = word * 64 + bit;
        if (cell >= cls.cellCount)
            continue;
        cls.occupancy[word] |= (1ull << bit);
        --cls.freeCount;
        cls.nextHint = word;
        freeBytesApprox_.fetch_sub(cls.cellSize,
                                   std::memory_order_relaxed);
        return cls.regionBase + cell * cls.cellSize;
    }
    return Status::outOfSpace("pool class exhausted");
}

void
PmemPool::free(u64 offset, u64 size)
{
    const int idx = classIndexFor(size);
    MGSP_CHECK(idx >= 0);
    SizeClass &cls = classes_[idx];
    MGSP_CHECK(offset >= cls.regionBase &&
               isAligned(offset - cls.regionBase, cls.cellSize));
    const u64 cell = (offset - cls.regionBase) / cls.cellSize;
    MGSP_CHECK(cell < cls.cellCount);
    std::lock_guard<SpinLock> guard(cls.lock);
    const u64 mask = 1ull << (cell % 64);
    MGSP_CHECK((cls.occupancy[cell / 64] & mask) != 0 && "double free");
    cls.occupancy[cell / 64] &= ~mask;
    ++cls.freeCount;
    freeBytesApprox_.fetch_add(cls.cellSize, std::memory_order_relaxed);
}

void
PmemPool::resetAllocationState()
{
    for (SizeClass &cls : classes_) {
        std::lock_guard<SpinLock> guard(cls.lock);
        std::fill(cls.occupancy.begin(), cls.occupancy.end(), 0);
        cls.freeCount = cls.cellCount;
        cls.nextHint = 0;
    }
    freeBytesApprox_.store(cellBytes_, std::memory_order_relaxed);
}

Status
PmemPool::markAllocated(u64 offset, u64 size)
{
    const int idx = classIndexFor(size);
    if (idx < 0 || idx != classIndexOwning(offset))
        return Status::invalidArgument("offset not in expected class");
    SizeClass &cls = classes_[idx];
    if (!isAligned(offset - cls.regionBase, cls.cellSize))
        return Status::invalidArgument("offset not a cell boundary");
    const u64 cell = (offset - cls.regionBase) / cls.cellSize;
    if (cell >= cls.cellCount)
        return Status::invalidArgument("cell out of range");
    std::lock_guard<SpinLock> guard(cls.lock);
    const u64 mask = 1ull << (cell % 64);
    if ((cls.occupancy[cell / 64] & mask) != 0)
        return Status::alreadyExists("cell referenced twice");
    cls.occupancy[cell / 64] |= mask;
    --cls.freeCount;
    freeBytesApprox_.fetch_sub(cls.cellSize, std::memory_order_relaxed);
    return Status::ok();
}

u64
PmemPool::freeCells(u64 size) const
{
    const int idx = classIndexFor(size);
    if (idx < 0)
        return 0;
    const SizeClass &cls = classes_[idx];
    std::lock_guard<SpinLock> guard(cls.lock);
    return cls.freeCount;
}

u64
PmemPool::classCellSize(u64 size) const
{
    const int idx = classIndexFor(size);
    return idx < 0 ? 0 : classes_[idx].cellSize;
}

}  // namespace mgsp
