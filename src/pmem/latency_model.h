/**
 * @file
 * Calibrated cost model for the emulated persistent memory device.
 *
 * The paper evaluates on 4x128 GB Intel Optane DC PMem (interleaved).
 * We run on DRAM, so the media's characteristic costs are re-injected
 * as busy-wait delays (common/clock.h). Constants are loosely
 * calibrated from Izraelevitz et al., "Basic Performance Measurements
 * of the Intel Optane DC Persistent Memory Module" (the paper's [20]):
 * ~300 ns random read latency, ~100 ns ntstore into the WPQ,
 * write bandwidth that favours >=256 B sequential stores, and a
 * sizeable cost for each flush+fence persistence point.
 *
 * Absolute values are deliberately scaled to keep benchmark runtimes
 * short; all figures in EXPERIMENTS.md are about *relative* shapes,
 * which depend only on the ratios preserved here.
 */
#ifndef MGSP_PMEM_LATENCY_MODEL_H
#define MGSP_PMEM_LATENCY_MODEL_H

#include "common/clock.h"
#include "common/types.h"

namespace mgsp {

/**
 * Nanosecond costs of the emulated NVM and of the software layers the
 * backends model. A backend charges costs by calling the charge*
 * helpers, which busy-wait (no-ops when delay injection is disabled).
 */
struct LatencyModel
{
    /** Fixed startup cost of a read that misses the CPU cache. */
    u64 readBaseNanos = 250;
    /** Incremental read cost per 256 B XPLine fetched. */
    u64 readPer256BNanos = 25;
    /** Incremental store cost per 256 B written to the device. */
    u64 writePer256BNanos = 50;
    /** Cost of one clwb/clflushopt reaching the WPQ. */
    u64 flushPerLineNanos = 40;
    /** Cost of an sfence draining outstanding flushes. */
    u64 fenceNanos = 90;
    /** One user->kernel->user crossing (kernel file systems only). */
    u64 syscallNanos = 500;
    /** Extra VFS + block-layer bookkeeping per kernel-FS operation. */
    u64 kernelFsPathNanos = 1800;
    /** Cost of one TLB-shootdown IPI round (CoW page remapping). */
    u64 tlbShootdownNanos = 2000;

    /** Charges the cost of reading @p bytes from the device. */
    void
    chargeRead(u64 bytes) const
    {
        if (bytes == 0)
            return;
        spinDelay(readBaseNanos +
                  readPer256BNanos * ((bytes + 255) / 256));
    }

    /** Charges the cost of storing @p bytes to the device. */
    void
    chargeWrite(u64 bytes) const
    {
        if (bytes == 0)
            return;
        spinDelay(writePer256BNanos * ((bytes + 255) / 256));
    }

    /** Charges flushing the cache lines covering @p bytes. */
    void
    chargeFlush(u64 bytes) const
    {
        if (bytes == 0)
            return;
        spinDelay(flushPerLineNanos * ((bytes + kCacheLineSize - 1) /
                                       kCacheLineSize));
    }

    /** Charges one persistence fence. */
    void chargeFence() const { spinDelay(fenceNanos); }

    /** Charges one kernel crossing plus FS path software cost. */
    void
    chargeSyscall() const
    {
        spinDelay(syscallNanos + kernelFsPathNanos);
    }

    /** Charges one TLB shootdown (page-table remap in CoW designs). */
    void chargeTlbShootdown() const { spinDelay(tlbShootdownNanos); }
};

}  // namespace mgsp

#endif  // MGSP_PMEM_LATENCY_MODEL_H
