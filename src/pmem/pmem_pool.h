/**
 * @file
 * Segregated fixed-partition allocator for shadow-log blocks.
 *
 * MGSP allocates log blocks of a handful of power-of-two sizes (one
 * per radix-tree level). The pool statically partitions its region
 * into one sub-region per size class; each class is an array of
 * fixed-size cells with a DRAM occupancy bitmap.
 *
 * Crash friendliness comes from keeping *no* persistent allocator
 * state: after a crash the occupancy bitmaps are rebuilt by scanning
 * the persistent node table (every live log block is referenced by
 * exactly one node record), via resetAllocationState() +
 * markAllocated(). This mirrors how NVM allocators such as the one in
 * PMDK recover via reachability instead of allocation journaling.
 */
#ifndef MGSP_PMEM_PMEM_POOL_H
#define MGSP_PMEM_PMEM_POOL_H

#include <atomic>
#include <deque>
#include <vector>

#include "common/spin_lock.h"
#include "common/status.h"
#include "common/types.h"
#include "pmem/fault_injection.h"

namespace mgsp {

/** One size class: cells of @ref cellSize filling @ref regionBytes. */
struct PoolClassConfig
{
    u64 cellSize;     ///< bytes per cell (power of two)
    u64 regionBytes;  ///< bytes of the pool devoted to this class
};

/**
 * Allocator over the device range [base, base+totalBytes). Thread
 * safe: each class has its own spin lock.
 */
class PmemPool
{
  public:
    /**
     * @param base    device offset where the pool region begins.
     * @param classes size classes; regions are laid out in order.
     */
    PmemPool(u64 base, std::vector<PoolClassConfig> classes);

    /** Total bytes spanned by all class regions. */
    u64 totalBytes() const { return totalBytes_; }
    u64 base() const { return base_; }
    u64 end() const { return base_ + totalBytes_; }

    /**
     * Allocates a cell of the smallest class whose cellSize >= @p size.
     * @return device offset of the cell, or OutOfSpace/InvalidArgument.
     */
    StatusOr<u64> alloc(u64 size);

    /** Returns the cell at @p offset (sized @p size at alloc time). */
    void free(u64 offset, u64 size);

    /** Marks every cell free (start of recovery). */
    void resetAllocationState();

    /**
     * Marks the cell containing @p offset allocated (recovery scan).
     * @return InvalidArgument if @p offset is not a cell boundary of
     *         the class that owns it, AlreadyExists on double marking.
     */
    Status markAllocated(u64 offset, u64 size);

    /** Free cells remaining in the class serving @p size. */
    u64 freeCells(u64 size) const;

    /**
     * Free bytes across all classes (lock-free snapshot; the value
     * drifts under concurrent alloc/free). Watermark checks only.
     */
    u64
    freeBytes() const
    {
        return freeBytesApprox_.load(std::memory_order_relaxed);
    }

    /** Bytes usable by cells across all classes (excludes padding). */
    u64 cellBytes() const { return cellBytes_; }

    /** Cell size of the class that would serve @p size (0 if none). */
    u64 classCellSize(u64 size) const;

    /**
     * Arms (or, with nullptr, disarms) scripted allocation faults at
     * the ResourceSite::PoolAlloc site. The injector must outlive the
     * pool; call only while no alloc() is in flight.
     */
    void
    setResourceFaultInjector(ResourceFaultInjector *injector)
    {
        injector_ = injector;
    }

  private:
    struct SizeClass
    {
        u64 cellSize = 0;
        u64 regionBase = 0;  ///< absolute device offset
        u64 cellCount = 0;
        u64 freeCount = 0;
        u64 nextHint = 0;    ///< search start for the next alloc
        std::vector<u64> occupancy;  ///< 1 bit per cell; 1 = allocated
        mutable SpinLock lock;
    };

    /** Index of the class serving @p size, or -1. */
    int classIndexFor(u64 size) const;
    /** Index of the class owning device offset @p off, or -1. */
    int classIndexOwning(u64 off) const;

    u64 base_;
    u64 totalBytes_;
    u64 cellBytes_ = 0;
    ResourceFaultInjector *injector_ = nullptr;
    std::atomic<u64> freeBytesApprox_{0};
    std::deque<SizeClass> classes_;  // deque: SizeClass is immovable
};

}  // namespace mgsp

#endif  // MGSP_PMEM_PMEM_POOL_H
