/**
 * @file
 * TSan-exempt memory copies for optimistic (seqlock-validated)
 * protocols.
 *
 * Optimistic readers copy bytes that a writer may be mutating and
 * then discard the copy if a version check fails — a data race by
 * design, made benign by the validation. ThreadSanitizer cannot see
 * the protocol, so these copies are compiled uninstrumented under
 * TSan: the volatile accesses keep the compiler from lowering the
 * loop to a (TSan-intercepted) memcpy call; word copies keep it
 * reasonably fast. Without TSan they are plain memcpy.
 *
 * Users: PmemDevice::racyRead (optimistic tree reads over the NVM
 * arena) and the DRAM read cache (frame fills racing frame hits).
 */
#ifndef MGSP_COMMON_RACY_COPY_H
#define MGSP_COMMON_RACY_COPY_H

#include <cstring>

#include "common/types.h"

#if defined(__SANITIZE_THREAD__)
#define MGSP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MGSP_TSAN 1
#endif
#endif

namespace mgsp {

#ifdef MGSP_TSAN
__attribute__((no_sanitize("thread"), noinline)) inline void
racyCopy(void *dst, const void *src, u64 len)
{
    auto *d = static_cast<u8 *>(dst);
    const auto *s = static_cast<const u8 *>(src);
    while (len >= 8 && reinterpret_cast<uintptr_t>(s) % 8 == 0) {
        u64 word = *reinterpret_cast<const volatile u64 *>(s);
        std::memcpy(d, &word, 8);
        d += 8;
        s += 8;
        len -= 8;
    }
    while (len > 0) {
        *d++ = *reinterpret_cast<const volatile u8 *>(s++);
        --len;
    }
}

/** Write-side twin of racyCopy: uninstrumented volatile stores. */
__attribute__((no_sanitize("thread"), noinline)) inline void
racyStore(void *dst, const void *src, u64 len)
{
    auto *d = static_cast<u8 *>(dst);
    const auto *s = static_cast<const u8 *>(src);
    while (len >= 8 && reinterpret_cast<uintptr_t>(d) % 8 == 0) {
        u64 word;
        std::memcpy(&word, s, 8);
        *reinterpret_cast<volatile u64 *>(d) = word;
        d += 8;
        s += 8;
        len -= 8;
    }
    while (len > 0) {
        *reinterpret_cast<volatile u8 *>(d++) = *s++;
        --len;
    }
}
#else
inline void
racyCopy(void *dst, const void *src, u64 len)
{
    std::memcpy(dst, src, len);
}

inline void
racyStore(void *dst, const void *src, u64 len)
{
    std::memcpy(dst, src, len);
}
#endif

}  // namespace mgsp

#endif  // MGSP_COMMON_RACY_COPY_H
