#include "common/stats.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "common/clock.h"
#include "common/logging.h"
#include "common/spin_lock.h"
#include "common/trace.h"

#ifndef MGSP_GIT_SHA
#define MGSP_GIT_SHA "unknown"
#endif

namespace mgsp {
namespace stats {

namespace {

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{[] {
        if (!kCompiledIn)
            return false;
        const char *env = std::getenv("MGSP_STATS");
        return !(env != nullptr && env[0] == '0');
    }()};
    return flag;
}

/** Escapes the few JSON-hostile characters a stat name could hold. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
appendHistogramJson(std::string *out, const Histogram &h)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"count\":%llu,\"mean\":%.1f,\"min\":%llu,\"p50\":%llu,"
        "\"p90\":%llu,\"p99\":%llu,\"max\":%llu}",
        static_cast<unsigned long long>(h.count()), h.mean(),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.percentile(0.50)),
        static_cast<unsigned long long>(h.percentile(0.90)),
        static_cast<unsigned long long>(h.percentile(0.99)),
        static_cast<unsigned long long>(h.max()));
    *out += buf;
}

}  // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::None: return "none";
      case Stage::Claim: return "claim";
      case Stage::Lock: return "lock";
      case Stage::DataWrite: return "data_write";
      case Stage::CommitFence: return "commit_fence";
      case Stage::BitmapApply: return "bitmap_apply";
      case Stage::Read: return "read";
      case Stage::OptimisticRead: return "read_optimistic";
      case Stage::ReadCache: return "read_cache";
      case Stage::Recovery: return "recovery";
      case Stage::WriteBack: return "writeback";
      case Stage::Clean: return "clean";
      case Stage::kCount: break;
    }
    return "?";
}

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Write: return "write";
      case OpType::Append: return "append";
      case OpType::Batch: return "batch";
      case OpType::Read: return "read";
      case OpType::Truncate: return "truncate";
      case OpType::Recovery: return "recovery";
      case OpType::Clean: return "clean";
      case OpType::kCount: break;
    }
    return "?";
}

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(kCompiledIn && on, std::memory_order_relaxed);
}

u32
currentThreadId()
{
    static std::atomic<u32> next{1};
    thread_local u32 id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

// ---- metadata header --------------------------------------------

namespace {

std::mutex &
metadataMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, std::string> &
metadataExtras()
{
    static std::map<std::string, std::string> extras;
    return extras;
}

}  // namespace

void
setMetadataField(const std::string &key, const std::string &rawJson)
{
    std::lock_guard<std::mutex> guard(metadataMutex());
    metadataExtras()[key] = rawJson;
}

std::string
metadataJson()
{
    const char *seed = std::getenv("MGSP_TEST_SEED");
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"schema_version\":%u,\"git_sha\":\"%s\",\"seed\":",
                  kStatsSchemaVersion, MGSP_GIT_SHA);
    out += buf;
    if (seed != nullptr && seed[0] != '\0')
        out += "\"" + jsonEscape(seed) + "\"";
    else
        out += "null";
    std::lock_guard<std::mutex> guard(metadataMutex());
    for (const auto &[key, rawJson] : metadataExtras())
        out += ",\"" + jsonEscape(key) + "\":" + rawJson;
    out += "}";
    return out;
}

// ---- Counter ----------------------------------------------------

u64
Counter::value() const
{
    u64 total = 0;
    for (const Shard &s : shards_)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (Shard &s : shards_)
        s.v.store(0, std::memory_order_relaxed);
}

// ---- ShardedHistogram -------------------------------------------

namespace {

u64
nextHistogramId()
{
    static std::atomic<u64> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ShardedHistogram::ShardedHistogram() : id_(nextHistogramId()) {}

ShardedHistogram::~ShardedHistogram()
{
    Shard *s = shards_.load(std::memory_order_acquire);
    while (s != nullptr) {
        Shard *next = s->next;
        delete s;
        s = next;
    }
}

ShardedHistogram::Shard *
ShardedHistogram::shardForCurrentThread()
{
    // Keyed by the histogram's process-unique id, not its address, so
    // a stale entry for a destroyed histogram can never alias a new
    // one. Stale entries are never looked up again (ids not reused).
    thread_local std::unordered_map<u64, Shard *> tls_shards;
    auto it = tls_shards.find(id_);
    if (it != tls_shards.end())
        return it->second;
    auto *shard = new Shard;
    shard->next = shards_.load(std::memory_order_relaxed);
    while (!shards_.compare_exchange_weak(shard->next, shard,
                                          std::memory_order_release,
                                          std::memory_order_relaxed))
        ;
    tls_shards.emplace(id_, shard);
    return shard;
}

void
ShardedHistogram::record(u64 value)
{
    Shard *s = shardForCurrentThread();
    // Seqlock write: the shard is thread-private, so the only
    // concurrency is with snapshot() readers, which retry on an odd
    // or changed sequence. (Stores are not reordered on x86; on
    // weaker targets a torn read costs at most one discarded sample
    // — diagnostics-grade accuracy.)
    const u64 q = s->seq.load(std::memory_order_relaxed);
    s->seq.store(q + 1, std::memory_order_relaxed);
    s->hist.record(value);
    s->seq.store(q + 2, std::memory_order_release);
}

Histogram
ShardedHistogram::snapshot() const
{
    Histogram merged;
    for (Shard *s = shards_.load(std::memory_order_acquire); s != nullptr;
         s = s->next) {
        Histogram copy;
        bool clean = false;
        for (int attempt = 0; attempt < 64 && !clean; ++attempt) {
            const u64 q = s->seq.load(std::memory_order_acquire);
            if (q & 1) {
                cpuRelax();
                continue;
            }
            copy = s->hist;
            std::atomic_thread_fence(std::memory_order_acquire);
            clean = s->seq.load(std::memory_order_relaxed) == q;
        }
        merged.merge(copy);  // after 64 tries: best effort
    }
    return merged;
}

void
ShardedHistogram::reset()
{
    for (Shard *s = shards_.load(std::memory_order_acquire); s != nullptr;
         s = s->next) {
        const u64 q = s->seq.load(std::memory_order_relaxed);
        s->seq.store(q + 1, std::memory_order_relaxed);
        s->hist = Histogram();
        s->seq.store(q + 2, std::memory_order_release);
    }
}

// ---- StatsRegistry ----------------------------------------------

StatsRegistry &
StatsRegistry::instance()
{
    // Leaked: counters/histograms handed out must outlive every
    // thread, including detached ones running at exit.
    static StatsRegistry *registry = [] {
        addPanicHook([] { dumpOpRings(stderr); });
        return new StatsRegistry;
    }();
    return *registry;
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

ShardedHistogram &
StatsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<ShardedHistogram>();
    return *slot;
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

std::string
StatsRegistry::toText() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::string out;
    char buf[64];
    for (const auto &[name, counter] : counters_) {
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(counter->value()));
        out += name;
        out += buf;
    }
    for (const auto &[name, histogram] : histograms_) {
        out += name;
        out += " ";
        out += histogram->snapshot().summary();
        out += "\n";
    }
    return out;
}

std::vector<std::pair<std::string, u64>>
StatsRegistry::sampleValues() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size() + histograms_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter->value());
    for (const auto &[name, histogram] : histograms_)
        out.emplace_back(name + ".count", histogram->snapshot().count());
    // Counters and histograms interleave: restore the global order the
    // sampler's binary search relies on.
    std::sort(out.begin(), out.end());
    return out;
}

std::string
StatsRegistry::toJson() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::string out = "{\"meta\":";
    out += metadataJson();
    out += ",\"counters\":{";
    char buf[64];
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(counter->value()));
        out += buf;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) + "\":";
        appendHistogramJson(&out, histogram->snapshot());
    }
    out += "}}";
    return out;
}

// ---- stage/op cell tables ---------------------------------------

namespace {

/** Cached registry pointers for one stage's hot-path counters. */
struct StageCells
{
    Counter *ops = nullptr;
    Counter *nanos = nullptr;
    Counter *bytesWritten = nullptr;
    Counter *bytesFlushed = nullptr;
    Counter *flushedLines = nullptr;
    Counter *fences = nullptr;
    ShardedHistogram *latency = nullptr;
};

StageCells &
stageCells(Stage s)
{
    static StageCells cells[kStageCount];
    static std::once_flag once;
    std::call_once(once, [] {
        StatsRegistry &r = StatsRegistry::instance();
        for (u32 i = 1; i < kStageCount; ++i) {  // skip None
            const std::string p =
                std::string("stage.") + stageName(static_cast<Stage>(i)) +
                ".";
            cells[i].ops = &r.counter(p + "ops");
            cells[i].nanos = &r.counter(p + "nanos");
            cells[i].bytesWritten = &r.counter(p + "bytes_written");
            cells[i].bytesFlushed = &r.counter(p + "bytes_flushed");
            cells[i].flushedLines = &r.counter(p + "flushed_lines");
            cells[i].fences = &r.counter(p + "fences");
            cells[i].latency = &r.histogram(p + "latency_ns");
        }
    });
    return cells[static_cast<u32>(s)];
}

ShardedHistogram &
opLatency(OpType t)
{
    static ShardedHistogram *hists[static_cast<u32>(OpType::kCount)];
    static std::once_flag once;
    std::call_once(once, [] {
        StatsRegistry &r = StatsRegistry::instance();
        for (u32 i = 0; i < static_cast<u32>(OpType::kCount); ++i) {
            hists[i] = &r.histogram(
                std::string("op.") + opTypeName(static_cast<OpType>(i)) +
                ".latency_ns");
        }
    });
    return *hists[static_cast<u32>(t)];
}

}  // namespace

StageSummary
stageSummary(Stage s)
{
    StageSummary out;
    if (s == Stage::None || s == Stage::kCount)
        return out;
    const StageCells &c = stageCells(s);
    out.ops = c.ops->value();
    out.nanosTotal = c.nanos->value();
    out.bytesWritten = c.bytesWritten->value();
    out.bytesFlushed = c.bytesFlushed->value();
    out.flushedLines = c.flushedLines->value();
    out.fences = c.fences->value();
    out.latency = c.latency->snapshot();
    return out;
}

// ---- stage attribution ------------------------------------------

namespace detail {

#ifndef MGSP_STATS_DISABLED
thread_local Stage tlsStage = Stage::None;
#endif

void
chargeWritten(Stage s, u64 bytes)
{
    stageCells(s).bytesWritten->add(bytes);
    trace::detail::addSpanBytes(bytes);
}

void
chargeFlushed(Stage s, u64 bytes, u64 lines)
{
    StageCells &c = stageCells(s);
    c.bytesFlushed->add(bytes);
    c.flushedLines->add(lines);
}

void
chargeFence(Stage s)
{
    stageCells(s).fences->add(1);
}

}  // namespace detail

// ---- operation trace ring ---------------------------------------

namespace {

struct ThreadRing
{
    u32 threadId = 0;
    std::atomic<u64> head{0};  ///< total records ever pushed
    OpRecord records[kOpRingCapacity];
    ThreadRing *next = nullptr;
};

std::atomic<ThreadRing *> gRings{nullptr};

ThreadRing *
ringForCurrentThread()
{
    // Leaked and left on the global list after thread exit so a
    // panic dump still shows the thread's last operations.
    thread_local ThreadRing *ring = [] {
        auto *r = new ThreadRing;
        r->threadId = currentThreadId();
        r->next = gRings.load(std::memory_order_relaxed);
        while (!gRings.compare_exchange_weak(r->next, r,
                                             std::memory_order_release,
                                             std::memory_order_relaxed))
            ;
        StatsRegistry::instance();  // installs the panic dump hook
        return r;
    }();
    return ring;
}

}  // namespace

void
pushOpRecord(const OpRecord &rec)
{
    ThreadRing *ring = ringForCurrentThread();
    const u64 head = ring->head.load(std::memory_order_relaxed);
    ring->records[head & (kOpRingCapacity - 1)] = rec;
    ring->head.store(head + 1, std::memory_order_release);
}

void
dumpOpRings(std::FILE *out)
{
    std::fprintf(out,
                 "---- recent operations (newest first per thread) ----\n");
    for (ThreadRing *ring = gRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next) {
        const u64 head = ring->head.load(std::memory_order_acquire);
        const u64 n = std::min<u64>(head, kOpRingCapacity);
        if (n == 0)
            continue;
        std::fprintf(out, "thread %u (%llu ops total):\n", ring->threadId,
                     static_cast<unsigned long long>(head));
        for (u64 i = 0; i < n; ++i) {
            const OpRecord &rec =
                ring->records[(head - 1 - i) & (kOpRingCapacity - 1)];
            std::fprintf(
                out,
                "  #%llu %-8s off=%llu len=%llu slots=%u gran=%c%c%c%c%s",
                static_cast<unsigned long long>(rec.seq),
                opTypeName(rec.op),
                static_cast<unsigned long long>(rec.offset),
                static_cast<unsigned long long>(rec.length), rec.slots,
                (rec.granMask & kGranCoarse) ? 'C' : '-',
                (rec.granMask & kGranLeaf) ? 'L' : '-',
                (rec.granMask & kGranFine) ? 'F' : '-',
                (rec.granMask & kGranInPlace) ? 'P' : '-',
                rec.ok ? "" : " FAILED");
            for (u32 st = 1; st < kStageCount; ++st) {
                if (rec.stageNanos[st] != 0)
                    std::fprintf(out, " %s=%uns",
                                 stageName(static_cast<Stage>(st)),
                                 rec.stageNanos[st]);
            }
            std::fputc('\n', out);
        }
    }
    std::fprintf(out, "-----------------------------------------------------\n");
}

u64
opRingSize()
{
    u64 total = 0;
    for (ThreadRing *ring = gRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next)
        total += std::min<u64>(ring->head.load(std::memory_order_acquire),
                               kOpRingCapacity);
    return total;
}

void
resetAll()
{
    StatsRegistry::instance().reset();
    for (ThreadRing *ring = gRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next)
        ring->head.store(0, std::memory_order_relaxed);
}

// ---- OpTrace ----------------------------------------------------

namespace {
std::atomic<u64> gOpSeq{1};
}  // namespace

OpTrace::OpTrace(OpType op, u64 offset, u64 length, bool on)
    : on_(kCompiledIn && on)
{
    if (!on_)
        return;
    rec_.op = op;
    rec_.offset = offset;
    rec_.length = length;
    rec_.threadId = currentThreadId();
    rec_.seq = gOpSeq.fetch_add(1, std::memory_order_relaxed);
    rec_.startNanos = monotonicNanos();
    stageStart_ = rec_.startNanos;
#ifndef MGSP_STATS_DISABLED
    prevStage_ = detail::tlsStage;
#endif
    if (trace::enabled()) {
        traced_ = true;
        prevOpId_ = trace::detail::currentOpId();
        trace::detail::setCurrentOpId(rec_.seq);
        prevSpanBytes_ = trace::detail::swapSpanBytes(0);
    }
}

void
OpTrace::stage(Stage s)
{
    if (!on_)
        return;
    const u64 now = monotonicNanos();
    if (cur_ != Stage::None) {
        const u64 delta = now - stageStart_;
        rec_.stageNanos[static_cast<u32>(cur_)] += static_cast<u32>(
            std::min<u64>(delta, ~u32{0}));
        StageCells &cells = stageCells(cur_);
        cells.ops->add(1);
        cells.nanos->add(delta);
        cells.latency->record(delta);
        if (traced_) {
            trace::TraceSpan span;
            span.opId = rec_.seq;
            span.startNanos = stageStart_;
            span.endNanos = now;
            span.bytes = trace::detail::swapSpanBytes(0);
            span.threadId = rec_.threadId;
            span.stage = cur_;
            span.op = rec_.op;
            span.ok = rec_.ok;
            opBytes_ += span.bytes;
            trace::pushSpan(span);
        }
    }
    cur_ = s;
    stageStart_ = now;
#ifndef MGSP_STATS_DISABLED
    detail::tlsStage = s;
#endif
}

void
OpTrace::abandon()
{
    abandoned_ = true;
}

OpTrace::~OpTrace()
{
    if (!on_)
        return;
    stage(Stage::None);  // close the open stage, clear attribution
#ifndef MGSP_STATS_DISABLED
    detail::tlsStage = prevStage_;  // restore any enclosing trace
#endif
    if (traced_) {
        trace::detail::setCurrentOpId(prevOpId_);
        trace::detail::swapSpanBytes(prevSpanBytes_);
    }
    if (abandoned_)
        return;
    const u64 end = monotonicNanos();
    opLatency(rec_.op).record(end - rec_.startNanos);
    pushOpRecord(rec_);
    if (traced_) {
        // The whole-op span: stage == None marks it as the parent of
        // this op's stage spans on the same thread track.
        trace::TraceSpan span;
        span.opId = rec_.seq;
        span.startNanos = rec_.startNanos;
        span.endNanos = end;
        span.bytes = opBytes_;
        span.threadId = rec_.threadId;
        span.op = rec_.op;
        span.ok = rec_.ok;
        trace::pushSpan(span);
    }
}

}  // namespace stats
}  // namespace mgsp
