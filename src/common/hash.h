/**
 * @file
 * Fast non-cryptographic hashing.
 *
 * Used to pick metadata-log slots from thread ids and to hash keys in
 * the database substrate. The mixer is the SplitMix64 finaliser, which
 * passes avalanche tests and is branch-free.
 */
#ifndef MGSP_COMMON_HASH_H
#define MGSP_COMMON_HASH_H

#include <cstddef>

#include "common/types.h"

namespace mgsp {

/** Mix a 64-bit value to a well-distributed 64-bit hash. */
constexpr u64
mixHash64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Combine two hashes (order-dependent). */
constexpr u64
hashCombine(u64 a, u64 b)
{
    return mixHash64(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

/** Hash an arbitrary byte range (FNV-1a core + final mix). */
inline u64
hashBytes(const void *data, std::size_t size)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 h = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return mixHash64(h);
}

}  // namespace mgsp

#endif  // MGSP_COMMON_HASH_H
