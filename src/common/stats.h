/**
 * @file
 * Process-wide observability: named lock-free counters, per-thread
 * sharded latency histograms, write-path stage attribution and a
 * per-thread ring of recent operation traces.
 *
 * The paper's evaluation (Fig. 13, Table II) argues from *per-stage*
 * cost accounting — where each write's nanoseconds and NVM bytes go:
 * metadata-log claim, MGL locking, shadow-log data write, commit
 * fence, bitmap apply. This module is the measurement backbone for
 * that attribution:
 *
 *  - StatsRegistry: named Counter / ShardedHistogram instances.
 *    Counters are cacheline-sharded atomics; histograms keep one
 *    shard per thread written under a seqlock, so the record path
 *    never takes a lock and readers merge shards on demand.
 *  - Stage attribution: an OpTrace on the MGSP write path publishes
 *    the current Stage in a thread-local; PmemDevice charges every
 *    byte written/flushed and every fence to that stage, yielding
 *    per-layer write amplification instead of one grand total.
 *  - Op ring: each traced operation leaves a fixed-size trace record
 *    (op type, offset, length, per-stage nanos, slots, granularity)
 *    in a per-thread ring buffer. panicError() dumps the rings, so a
 *    crash report shows the operations leading up to the bug.
 *
 * Cost control: `MGSP_STATS=0` (env) or MgspConfig::enableStats=false
 * reduces the whole module to one thread-local load per device write;
 * compiling with -DMGSP_STATS_DISABLED removes even that.
 */
#ifndef MGSP_COMMON_STATS_H
#define MGSP_COMMON_STATS_H

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace mgsp {
namespace stats {

/**
 * The write-path stage taxonomy (paper §III-D; DESIGN.md
 * "Observability"). Read/Recovery/WriteBack cover the non-write
 * entry points so every device byte is attributable.
 */
enum class Stage : u8 {
    None = 0,     ///< no traced operation in flight on this thread
    Claim,        ///< metadata-log entry claim (hash + CAS + probing)
    Lock,         ///< file lock / greedy covering lock / MGL descent
    DataWrite,    ///< shadow-tree traversal + shadow-log data write
    CommitFence,  ///< data fence + metadata-entry publish (commit)
    BitmapApply,  ///< bitmap-word apply, size persist, entry retire
    Read,         ///< locked read path (tree descent + copy-out)
    OptimisticRead,  ///< lock-free read attempt (seqlock validated)
    ReadCache,    ///< DRAM frame lookup/copy (hit or rejected probe)
    Recovery,     ///< mount-time metadata-log replay + rebuild
    WriteBack,    ///< close/truncate log write-back (checkpoint)
    Clean,        ///< background/sync cleaner write-back + reclaim
    kCount
};

inline constexpr u32 kStageCount = static_cast<u32>(Stage::kCount);

/** Stable lowercase stage name ("claim", "lock", ...). */
const char *stageName(Stage s);

/** Operation types recorded in the trace ring. */
enum class OpType : u8 {
    Write = 0,  ///< shadow-log write (doAtomicChunk slow path)
    Append,     ///< beyond-EOF in-place fast path
    Batch,      ///< writeBatch (transaction-level atomicity)
    Read,
    Truncate,
    Recovery,
    Clean,      ///< one cleaner drain cycle (not a user operation)
    kCount
};

/** Stable lowercase op-type name ("write", "append", ...). */
const char *opTypeName(OpType t);

/** Granularity bits observed while staging one write. */
inline constexpr u8 kGranCoarse = 1;  ///< interior-node (coarse) log
inline constexpr u8 kGranLeaf = 2;    ///< leaf-block log
inline constexpr u8 kGranFine = 4;    ///< sub-block fine-grained units
inline constexpr u8 kGranInPlace = 8; ///< home extent (append/no log)

#ifndef MGSP_STATS_DISABLED
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/**
 * Global runtime switch. Initialised once from the environment
 * (`MGSP_STATS=0` disables) and overridable via setEnabled().
 * Disabling does not clear already-recorded data.
 */
bool enabled();
void setEnabled(bool on);

/** Small dense id for the calling thread (1, 2, 3, ... in first-use order). */
u32 currentThreadId();

// ---- metadata header --------------------------------------------

/**
 * Version of the stats / bench JSON schema. Bumped whenever the
 * shape of toJson(), statsReport() JSON or the canonical BENCH_*.json
 * files changes incompatibly, so the perf-trajectory comparator can
 * refuse to diff across schema breaks.
 */
inline constexpr u32 kStatsSchemaVersion = 2;

/**
 * Registers (or overwrites) an extra metadata field emitted by
 * metadataJson(). @p rawJson is spliced in verbatim — pass a quoted
 * string or a JSON object/number. Used by e.g. the pmem device to
 * publish its latency-model constants so every stats/bench artifact
 * records the emulation parameters it was measured under.
 */
void setMetadataField(const std::string &key, const std::string &rawJson);

/**
 * The metadata header object: schema version, git sha (baked in at
 * build time), `MGSP_TEST_SEED` from the environment, and every
 * field registered via setMetadataField(), keys sorted. Embedded in
 * StatsRegistry::toJson(), MgspFs::statsReport() and BENCH_*.json so
 * comparator diffs are attributable to a build + config fingerprint.
 */
std::string metadataJson();

/**
 * A named monotonic counter. add() is wait-free: threads update one
 * of kShards cacheline-padded atomics chosen by thread id, so the
 * hot path never bounces a shared line between writers.
 */
class Counter
{
  public:
    void
    add(u64 n)
    {
        shards_[shardIndex()].v.fetch_add(n, std::memory_order_relaxed);
    }

    u64 value() const;

    /** Not linearisable against concurrent add(); callers quiesce. */
    void reset();

  private:
    static constexpr u32 kShards = 16;
    struct alignas(64) Shard
    {
        std::atomic<u64> v{0};
    };

    static u32
    shardIndex()
    {
        return currentThreadId() & (kShards - 1);
    }

    Shard shards_[kShards];
};

/**
 * A histogram with one private shard per writing thread. record()
 * touches only the calling thread's shard under a seqlock (two
 * relaxed/release stores around plain writes — no lock, no RMW on
 * shared state). snapshot() merges all shards, retrying any shard a
 * writer is mid-update on.
 *
 * Reader copies race with the owning thread's plain stores by
 * design; the sequence check discards torn copies on x86 (stores are
 * not reordered) and bounds the error to one sample elsewhere —
 * acceptable for diagnostics.
 */
class ShardedHistogram
{
  public:
    ShardedHistogram();
    ~ShardedHistogram();

    ShardedHistogram(const ShardedHistogram &) = delete;
    ShardedHistogram &operator=(const ShardedHistogram &) = delete;

    /** Records @p value into the calling thread's shard. */
    void record(u64 value);

    /** Merged view of every thread's samples. */
    Histogram snapshot() const;

    /** Not linearisable against concurrent record(); callers quiesce. */
    void reset();

  private:
    struct Shard
    {
        std::atomic<u64> seq{0};
        Histogram hist;
        Shard *next = nullptr;
    };

    Shard *shardForCurrentThread();

    const u64 id_;                       ///< unique across the process
    std::atomic<Shard *> shards_{nullptr};
};

/**
 * The process-wide registry of named stats. Lookup takes a mutex
 * (cold path — callers cache the returned pointers); the returned
 * objects live until process exit and their update paths are
 * lock-free as above.
 */
class StatsRegistry
{
  public:
    static StatsRegistry &instance();

    /** Get-or-create; the pointer is valid for the process lifetime. */
    Counter &counter(const std::string &name);
    ShardedHistogram &histogram(const std::string &name);

    /** Zeroes every counter and histogram (bench reuse; quiesced). */
    void reset();

    /**
     * All counters plus histogram summaries, one per line:
     * `name value` / `name n=.. mean=.. p50=.. p99=.. max=..`.
     */
    std::string toText() const;

    /**
     * `{"counters": {name: value, ...}, "histograms": {name:
     * {"count","mean","min","p50","p90","p99","max"}, ...}}`.
     */
    std::string toJson() const;

    /**
     * Flat snapshot of every counter value plus each histogram's
     * sample count (as "<name>.count"), for the time-series sampler:
     * subtracting two snapshots yields the per-interval deltas.
     */
    std::vector<std::pair<std::string, u64>> sampleValues() const;

  private:
    StatsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
};

/** Merged summary of one stage, for reports and benches. */
struct StageSummary
{
    u64 ops = 0;          ///< stage executions
    u64 nanosTotal = 0;   ///< total time spent in the stage
    u64 bytesWritten = 0; ///< device bytes stored while in the stage
    u64 bytesFlushed = 0;
    u64 flushedLines = 0;
    u64 fences = 0;
    Histogram latency;    ///< per-execution stage nanos
};

/** Snapshot of stage @p s from the registry's stage counters. */
StageSummary stageSummary(Stage s);

/** Resets the registry plus the op rings' contents (quiesced). */
void resetAll();

// ---- stage attribution (called by PmemDevice) -------------------

namespace detail {
#ifndef MGSP_STATS_DISABLED
extern thread_local Stage tlsStage;
#endif
void chargeWritten(Stage s, u64 bytes);
void chargeFlushed(Stage s, u64 bytes, u64 lines);
void chargeFence(Stage s);
}  // namespace detail

/** Current thread's attributed stage (None outside traced ops). */
inline Stage
currentStage()
{
#ifndef MGSP_STATS_DISABLED
    return detail::tlsStage;
#else
    return Stage::None;
#endif
}

/** Attribute @p bytes stored to the in-flight stage, if any. */
inline void
chargeBytesWritten(u64 bytes)
{
#ifndef MGSP_STATS_DISABLED
    if (detail::tlsStage != Stage::None)
        detail::chargeWritten(detail::tlsStage, bytes);
#else
    (void)bytes;
#endif
}

inline void
chargeBytesFlushed(u64 bytes, u64 lines)
{
#ifndef MGSP_STATS_DISABLED
    if (detail::tlsStage != Stage::None)
        detail::chargeFlushed(detail::tlsStage, bytes, lines);
#else
    (void)bytes;
    (void)lines;
#endif
}

inline void
chargeFence()
{
#ifndef MGSP_STATS_DISABLED
    if (detail::tlsStage != Stage::None)
        detail::chargeFence(detail::tlsStage);
#endif
}

// ---- operation trace ring ---------------------------------------

/** One recent operation; fixed size so the ring is a flat array. */
struct OpRecord
{
    u64 seq = 0;         ///< global operation sequence number
    u64 startNanos = 0;  ///< monotonicNanos() at trace start
    u64 offset = 0;
    u64 length = 0;
    u32 stageNanos[kStageCount] = {};  ///< per-stage elapsed (truncated)
    u32 threadId = 0;
    u16 slots = 0;       ///< metadata-log bitmap slots staged
    u8 granMask = 0;     ///< kGran* bits touched
    OpType op = OpType::Write;
    bool ok = true;      ///< false when the op returned an error
};

/** Ring capacity per thread (power of two). */
inline constexpr u32 kOpRingCapacity = 256;

/**
 * Appends @p rec to the calling thread's ring (lock-free; the ring
 * is thread-private, the global thread list is a lock-free stack).
 */
void pushOpRecord(const OpRecord &rec);

/**
 * Dumps every thread's recent operations to @p out, newest first per
 * thread. Safe to call from a panic handler: takes no locks and
 * tolerates concurrent writers (their newest slot may read torn).
 */
void dumpOpRings(std::FILE *out);

/** Number of records currently retained across all rings. */
u64 opRingSize();

/**
 * RAII tracer for one operation. Construction snapshots the clock;
 * stage() closes the previous stage (charging its nanos to the stage
 * histogram/counters) and opens the next, also publishing it for
 * device-byte attribution; destruction closes the trace and pushes
 * the OpRecord into the thread's ring.
 *
 * Constructed with on=false (stats disabled) every method is a
 * branch on one bool — no clock reads, no TLS publication.
 */
class OpTrace
{
  public:
    OpTrace(OpType op, u64 offset, u64 length, bool on);
    ~OpTrace();

    OpTrace(const OpTrace &) = delete;
    OpTrace &operator=(const OpTrace &) = delete;

    bool on() const { return on_; }

    /**
     * The operation's process-unique id (0 when off). Doubles as the
     * causal trace id: pass it to MgspFs::noteDirty so the cleaner's
     * later write-back span can point back at this op.
     */
    u64 opId() const { return on_ ? rec_.seq : 0; }

    /** Transition to @p s, closing the currently open stage. */
    void stage(Stage s);

    /** Close the open stage without opening another. */
    void endStage() { stage(Stage::None); }

    void
    setSlots(u32 n)
    {
        if (on_)
            rec_.slots = static_cast<u16>(n);
    }

    void
    orGranMask(u8 mask)
    {
        if (on_)
            rec_.granMask |= mask;
    }

    void
    setFailed()
    {
        if (on_)
            rec_.ok = false;
    }

    /** Re-label the op (e.g. Append downgraded to Write on a race). */
    void
    setOp(OpType op)
    {
        if (on_)
            rec_.op = op;
    }

    /** Drop the trace: close stages but push no ring record. */
    void abandon();

  private:
    OpRecord rec_{};
    u64 stageStart_ = 0;
    // Nesting support: an inline cleaner drain runs its own OpTrace
    // inside a writer's (noteDirty below the watermark), so the ctor
    // saves and the dtor restores the outer trace's published stage,
    // causal op id and span-byte accumulator.
    u64 prevOpId_ = 0;
    u64 prevSpanBytes_ = 0;
    u64 opBytes_ = 0;     ///< device bytes stored across all stages
    Stage cur_ = Stage::None;
    Stage prevStage_ = Stage::None;
    bool on_ = false;
    bool traced_ = false; ///< trace plane was enabled at construction
    bool abandoned_ = false;
};

}  // namespace stats
}  // namespace mgsp

#endif  // MGSP_COMMON_STATS_H
