/**
 * @file
 * Monotonic timing and calibrated busy-wait delay injection.
 *
 * The latency models in pmem/ and the baselines inject nanosecond-scale
 * costs (syscall crossings, media writes, fences) as busy-waits so that
 * multi-threaded contention behaves like it would on real hardware.
 */
#ifndef MGSP_COMMON_CLOCK_H
#define MGSP_COMMON_CLOCK_H

#include "common/types.h"

namespace mgsp {

/** Monotonic nanoseconds since an arbitrary epoch. */
u64 monotonicNanos();

/**
 * Busy-waits for approximately @p nanos nanoseconds.
 *
 * Spins on the monotonic clock; accurate to roughly the clock read
 * cost (tens of nanoseconds). A no-op when delay injection is globally
 * disabled (see setDelayInjectionEnabled()).
 */
void spinDelay(u64 nanos);

/**
 * Globally enables/disables spinDelay(). Tests disable it; benchmarks
 * leave it on (unless env MGSP_NO_DELAY=1).
 */
void setDelayInjectionEnabled(bool enabled);

/** @return whether spinDelay() currently injects real delay. */
bool delayInjectionEnabled();

/** A simple stopwatch for benchmark loops. */
class Stopwatch
{
  public:
    Stopwatch() { reset(); }
    void reset() { start_ = monotonicNanos(); }
    u64 elapsedNanos() const { return monotonicNanos() - start_; }
    double elapsedSeconds() const { return elapsedNanos() * 1e-9; }

  private:
    u64 start_;
};

}  // namespace mgsp

#endif  // MGSP_COMMON_CLOCK_H
