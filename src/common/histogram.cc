#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace mgsp {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

unsigned
Histogram::bucketFor(u64 value)
{
    if (value < kSubBuckets)
        return static_cast<unsigned>(value);
    const unsigned msb = 63 - std::countl_zero(value);
    const unsigned sub = static_cast<unsigned>(
        (value >> (msb - 4)) & (kSubBuckets - 1));
    unsigned idx = (msb - 3) * kSubBuckets + sub;
    return std::min(idx, kBucketCount - 1);
}

u64
Histogram::bucketUpperBound(unsigned index)
{
    if (index < kSubBuckets)
        return index;
    const unsigned msb = index / kSubBuckets + 3;
    const unsigned sub = index % kSubBuckets;
    return (static_cast<u64>(kSubBuckets + sub + 1) << (msb - 4)) - 1;
}

void
Histogram::record(u64 value)
{
    buckets_[bucketFor(value)]++;
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Histogram::merge(const Histogram &other)
{
    for (unsigned i = 0; i < kBucketCount; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

u64
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const u64 target = static_cast<u64>(q * static_cast<double>(count_ - 1));
    u64 seen = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
        seen += buckets_[i];
        if (seen > target)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

std::string
Histogram::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<unsigned long long>(percentile(0.50)),
                  static_cast<unsigned long long>(percentile(0.99)),
                  static_cast<unsigned long long>(max_));
    return buf;
}

}  // namespace mgsp
