/**
 * @file
 * Checksums used to validate persistent metadata.
 *
 * CRC32C (Castagnoli) guards the MGSP metadata-log entries; CRC64
 * (ECMA-182) guards larger structures such as WAL frames in minidb.
 * Both are table-driven software implementations so the library has
 * no ISA dependencies.
 */
#ifndef MGSP_COMMON_CHECKSUM_H
#define MGSP_COMMON_CHECKSUM_H

#include <cstddef>

#include "common/types.h"

namespace mgsp {

/**
 * CRC32C of @p data, seeded with @p seed (pass 0 for a fresh CRC;
 * pass a previous result to chain ranges).
 */
u32 crc32c(const void *data, std::size_t size, u32 seed = 0);

/** CRC64/ECMA of @p data, chainable through @p seed like crc32c(). */
u64 crc64(const void *data, std::size_t size, u64 seed = 0);

}  // namespace mgsp

#endif  // MGSP_COMMON_CHECKSUM_H
