/**
 * @file
 * Background time-series sampler over the StatsRegistry.
 *
 * The registry's counters are end-of-run aggregates; a bench that
 * reports one number cannot show a group-commit burst, a cleaner
 * falling behind, or a throughput cliff when the arena fills. The
 * sampler closes that gap: a background thread snapshots every
 * counter (plus histogram sample counts) every intervalMillis and
 * stores the per-interval deltas, so the stats JSON carries
 * throughput *over time* — the evidentiary basis for the upcoming
 * epoch-sync and DRAM-cache work.
 *
 * Cost: one sampleValues() snapshot per tick (a mutex + O(counters)
 * relaxed loads), nothing on any hot path. Not started by default;
 * benches opt in with --sample-ms=N.
 */
#ifndef MGSP_COMMON_STATS_SAMPLER_H
#define MGSP_COMMON_STATS_SAMPLER_H

#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mgsp {
namespace stats {

class StatsSampler
{
  public:
    /** @p intervalMillis between snapshots; clamped to >= 1. */
    explicit StatsSampler(u32 intervalMillis);
    ~StatsSampler();  ///< stops without a final sample if still running

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

    /** Takes the baseline snapshot and launches the sampler thread. */
    void start();

    /** Joins the thread after one final snapshot. Idempotent. */
    void stop();

    /** Ticks recorded so far (grows while running). */
    u64 sampleCount() const;

    /**
     * `{"interval_ms":N,"ticks":T,"tick_ns":[...],"series":{name:
     * [delta,...],...}}` — one delta per tick per counter, with the
     * measured tick duration alongside so consumers can derive true
     * rates (ops/s = delta / tick_ns * 1e9). All-zero series are
     * omitted to keep benches with hundreds of idle counters small.
     */
    std::string toJson() const;

  private:
    void run();
    void sampleOnce(u64 nowNanos);

    const u32 intervalMillis_;
    mutable std::mutex mutex_;       ///< guards series_/tickNanos_
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stopRequested_ = false;
    u64 lastNanos_ = 0;
    std::vector<std::pair<std::string, u64>> last_;  ///< previous snapshot
    std::map<std::string, std::vector<u64>> series_; ///< per-tick deltas
    std::vector<u64> tickNanos_;                     ///< measured durations
};

}  // namespace stats
}  // namespace mgsp

#endif  // MGSP_COMMON_STATS_SAMPLER_H
