/**
 * @file
 * Lightweight error handling used across the library.
 *
 * Hot paths (per-I/O code) use Status return codes rather than
 * exceptions, following the convention of the storage engines this
 * library models. StatusOr<T> carries a value or an error.
 */
#ifndef MGSP_COMMON_STATUS_H
#define MGSP_COMMON_STATUS_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace mgsp {

/** Error categories surfaced by the public API. */
enum class StatusCode {
    Ok = 0,
    InvalidArgument,
    NotFound,
    AlreadyExists,
    OutOfSpace,
    Corruption,
    Busy,
    IoError,
    MediaError,
    Unsupported,
    Internal,
    ResourceBusy,
    ReadOnlyFs,
};

/** @return a stable human-readable name for @p code. */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "Ok";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::AlreadyExists: return "AlreadyExists";
      case StatusCode::OutOfSpace: return "OutOfSpace";
      case StatusCode::Corruption: return "Corruption";
      case StatusCode::Busy: return "Busy";
      case StatusCode::IoError: return "IoError";
      case StatusCode::MediaError: return "MediaError";
      case StatusCode::Unsupported: return "Unsupported";
      case StatusCode::Internal: return "Internal";
      case StatusCode::ResourceBusy: return "ResourceBusy";
      case StatusCode::ReadOnlyFs: return "ReadOnlyFs";
    }
    return "Unknown";
}

/**
 * Result of an operation: a code plus an optional message.
 *
 * The Ok status carries no allocation; error statuses may carry a
 * message describing the failure.
 */
class Status
{
  public:
    /** Constructs an Ok status. */
    Status() : code_(StatusCode::Ok) {}

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    static Status
    invalidArgument(std::string msg)
    {
        return Status(StatusCode::InvalidArgument, std::move(msg));
    }
    static Status
    notFound(std::string msg)
    {
        return Status(StatusCode::NotFound, std::move(msg));
    }
    static Status
    alreadyExists(std::string msg)
    {
        return Status(StatusCode::AlreadyExists, std::move(msg));
    }
    static Status
    outOfSpace(std::string msg)
    {
        return Status(StatusCode::OutOfSpace, std::move(msg));
    }
    static Status
    corruption(std::string msg)
    {
        return Status(StatusCode::Corruption, std::move(msg));
    }
    static Status
    busy(std::string msg)
    {
        return Status(StatusCode::Busy, std::move(msg));
    }
    static Status
    ioError(std::string msg)
    {
        return Status(StatusCode::IoError, std::move(msg));
    }
    /**
     * An uncorrectable media error (poisoned NVM line) was hit while
     * reading persistent memory. Unlike Corruption — which means a
     * checksum mismatch over bytes that read fine — MediaError means
     * the device itself refused the load (DAX SIGBUS / UC error).
     * Transient faults may succeed on retry; see
     * MgspConfig::mediaErrorRetries.
     */
    static Status
    mediaError(std::string msg)
    {
        return Status(StatusCode::MediaError, std::move(msg));
    }
    static Status
    unsupported(std::string msg)
    {
        return Status(StatusCode::Unsupported, std::move(msg));
    }
    /**
     * A transient *internal* resource (metadata-log entry, shadow-log
     * pool cell, node record) stayed exhausted past the caller's
     * bounded retry budget. Unlike Busy — a lock/race conflict that a
     * bare retry resolves — and unlike OutOfSpace — a capacity limit
     * of the file itself — ResourceBusy means "try again later once
     * the cleaner has reclaimed space" (POSIX EAGAIN semantics; see
     * statusToErrno() in vfs/vfs.h).
     */
    static Status
    resourceBusy(std::string msg)
    {
        return Status(StatusCode::ResourceBusy, std::move(msg));
    }
    static Status
    internal(std::string msg)
    {
        return Status(StatusCode::Internal, std::move(msg));
    }
    /**
     * The engine (or the targeted inode) is in a read-only health
     * state: a fenced/condemned file, or a file system that escalated
     * to ReadOnly/FailStop (see mgsp/health.h). Unlike MediaError —
     * the per-access fault itself — ReadOnlyFs is the *containment*
     * verdict: mutations are rejected until repair (or an
     * administrative reformat) clears the state, while reads may
     * still be served. POSIX EROFS semantics; see statusToErrno() in
     * vfs/vfs.h.
     */
    static Status
    readOnlyFs(std::string msg)
    {
        return Status(StatusCode::ReadOnlyFs, std::move(msg));
    }

    bool isOk() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Formats "Code: message" for diagnostics. */
    std::string
    toString() const
    {
        std::string s = statusCodeName(code_);
        if (!message_.empty()) {
            s += ": ";
            s += message_;
        }
        return s;
    }

    bool operator==(const Status &o) const { return code_ == o.code_; }

  private:
    StatusCode code_;
    std::string message_;
};

/**
 * Either a value of type T or an error Status.
 *
 * Access to value() on an error is a programming bug and asserts.
 */
template <typename T>
class StatusOr
{
  public:
    StatusOr(Status status) : data_(std::move(status))
    {
        assert(!std::get<Status>(data_).isOk() &&
               "StatusOr must not hold an Ok status without a value");
    }
    StatusOr(T value) : data_(std::move(value)) {}

    bool isOk() const { return std::holds_alternative<T>(data_); }

    const Status &
    status() const
    {
        static const Status ok_status;
        if (isOk())
            return ok_status;
        return std::get<Status>(data_);
    }

    T &
    value()
    {
        assert(isOk());
        return std::get<T>(data_);
    }
    const T &
    value() const
    {
        assert(isOk());
        return std::get<T>(data_);
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::variant<Status, T> data_;
};

/** Propagate a non-Ok status to the caller. */
#define MGSP_RETURN_IF_ERROR(expr)                                          \
    do {                                                                     \
        ::mgsp::Status mgsp_status_tmp = (expr);                             \
        if (!mgsp_status_tmp.isOk())                                         \
            return mgsp_status_tmp;                                          \
    } while (0)

}  // namespace mgsp

#endif  // MGSP_COMMON_STATUS_H
