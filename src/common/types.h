/**
 * @file
 * Fundamental type aliases and small utilities shared by every module.
 */
#ifndef MGSP_COMMON_TYPES_H
#define MGSP_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace mgsp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Size of one CPU cache line; the unit of persistence on NVM. */
inline constexpr std::size_t kCacheLineSize = 64;

/** Common power-of-two size constants. */
inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;
inline constexpr u64 GiB = 1024 * MiB;

}  // namespace mgsp

#endif  // MGSP_COMMON_TYPES_H
