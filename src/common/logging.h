/**
 * @file
 * Diagnostic logging and invariant checks.
 *
 * Modelled after gem5's fatal()/panic() distinction: fatal() is a user
 * error (bad configuration) and exits cleanly; panic() is a library
 * bug and aborts.
 */
#ifndef MGSP_COMMON_LOGGING_H
#define MGSP_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace mgsp {

enum class LogLevel { Debug = 0, Info, Warn, Error };

/** Sets the minimum level that will be printed (default: Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** printf-style log emission; filtered by the global level. */
void logMessage(LogLevel level, const char *file, int line, const char *fmt,
                ...) __attribute__((format(printf, 4, 5)));

/** User-facing unrecoverable error: prints and exits(1). */
[[noreturn]] void fatalError(const char *file, int line, const char *fmt,
                             ...) __attribute__((format(printf, 3, 4)));

/** Library bug: prints and aborts (core dump friendly). */
[[noreturn]] void panicError(const char *file, int line, const char *fmt,
                             ...) __attribute__((format(printf, 3, 4)));

/**
 * Registers @p hook to run inside panicError() after the message is
 * printed and before abort() — e.g. to dump diagnostic state (the
 * stats op ring registers itself here). Hooks must be async-crash
 * tolerant: take no locks, touch only their own data. At most 8
 * hooks; extras are ignored. A hook that panics recursively is not
 * re-entered.
 */
void addPanicHook(void (*hook)());

#define MGSP_LOG(level, ...)                                                 \
    ::mgsp::logMessage((level), __FILE__, __LINE__, __VA_ARGS__)
#define MGSP_DEBUG(...) MGSP_LOG(::mgsp::LogLevel::Debug, __VA_ARGS__)
#define MGSP_INFO(...) MGSP_LOG(::mgsp::LogLevel::Info, __VA_ARGS__)
#define MGSP_WARN(...) MGSP_LOG(::mgsp::LogLevel::Warn, __VA_ARGS__)
#define MGSP_ERROR(...) MGSP_LOG(::mgsp::LogLevel::Error, __VA_ARGS__)

#define MGSP_FATAL(...) ::mgsp::fatalError(__FILE__, __LINE__, __VA_ARGS__)
#define MGSP_PANIC(...) ::mgsp::panicError(__FILE__, __LINE__, __VA_ARGS__)

/** Invariant check that stays on in release builds. */
#define MGSP_CHECK(cond)                                                     \
    do {                                                                     \
        if (__builtin_expect(!(cond), 0))                                    \
            MGSP_PANIC("check failed: %s", #cond);                           \
    } while (0)

}  // namespace mgsp

#endif  // MGSP_COMMON_LOGGING_H
