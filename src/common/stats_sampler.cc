/** @file StatsRegistry time-series sampler. */
#include "common/stats_sampler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/clock.h"

namespace mgsp {
namespace stats {

StatsSampler::StatsSampler(u32 intervalMillis)
    : intervalMillis_(std::max<u32>(intervalMillis, 1))
{
}

StatsSampler::~StatsSampler()
{
    stop();
}

void
StatsSampler::start()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (running_)
        return;
    running_ = true;
    stopRequested_ = false;
    last_ = StatsRegistry::instance().sampleValues();
    lastNanos_ = monotonicNanos();
    thread_ = std::thread([this] { run(); });
}

void
StatsSampler::stop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopRequested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    std::unique_lock<std::mutex> lock(mutex_);
    running_ = false;
}

void
StatsSampler::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // do-while: even when stop() wins the race and the flag is already
    // set on entry, one final sample is taken, so the tail of the run
    // (the part a regression usually lives in) is not silently dropped.
    do {
        cv_.wait_for(lock, std::chrono::milliseconds(intervalMillis_),
                     [this] { return stopRequested_; });
        sampleOnce(monotonicNanos());
    } while (!stopRequested_);
}

void
StatsSampler::sampleOnce(u64 nowNanos)
{
    // Called with mutex_ held. sampleValues() takes the registry's
    // own mutex; no path locks them in the other order.
    std::vector<std::pair<std::string, u64>> now =
        StatsRegistry::instance().sampleValues();
    const u64 tick = tickNanos_.size();
    for (const auto &[name, value] : now) {
        // Counters can appear mid-run (first op of a kind); treat a
        // missing previous value as 0 and backfill the series.
        u64 prev = 0;
        const auto it = std::lower_bound(
            last_.begin(), last_.end(), name,
            [](const std::pair<std::string, u64> &a,
               const std::string &b) { return a.first < b; });
        if (it != last_.end() && it->first == name)
            prev = it->second;
        std::vector<u64> &column = series_[name];
        column.resize(tick, 0);
        // Benches reset counters between runs; a value below the
        // previous snapshot means "restarted from zero", not a
        // (u64-wrapping) negative delta.
        column.push_back(value >= prev ? value - prev : value);
    }
    tickNanos_.push_back(nowNanos - lastNanos_);
    lastNanos_ = nowNanos;
    last_ = std::move(now);
}

u64
StatsSampler::sampleCount() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return tickNanos_.size();
}

std::string
StatsSampler::toJson() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::string out;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{\"interval_ms\":%u,\"ticks\":%zu",
                  intervalMillis_, tickNanos_.size());
    out += buf;
    out += ",\"tick_ns\":[";
    for (std::size_t i = 0; i < tickNanos_.size(); ++i) {
        if (i != 0)
            out += ",";
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(tickNanos_[i]));
        out += buf;
    }
    out += "],\"series\":{";
    bool first = true;
    for (const auto &[name, column] : series_) {
        const bool allZero =
            std::all_of(column.begin(), column.end(),
                        [](u64 v) { return v == 0; });
        if (allZero)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += "\"";
        for (char c : name) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += "\":[";
        for (std::size_t i = 0; i < column.size(); ++i) {
            if (i != 0)
                out += ",";
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(column[i]));
            out += buf;
        }
        // Columns lag the tick count when a counter appeared and then
        // went idle; pad with explicit zeros so rows stay rectangular.
        for (std::size_t i = column.size(); i < tickNanos_.size(); ++i)
            out += ",0";
        out += "]";
    }
    out += "}}";
    return out;
}

}  // namespace stats
}  // namespace mgsp
