/**
 * @file
 * Causal operation tracing: per-thread lock-free span rings plus a
 * Chrome-trace-event (Perfetto-loadable) exporter.
 *
 * The PR-1 stats plane answers "where do the nanoseconds go in
 * aggregate" (per-stage counters and histograms). This module answers
 * the question those aggregates cannot: *where inside one operation*
 * the time went, and what later asynchronous work that operation
 * caused. Every traced MGSP operation (see stats::OpTrace) carries a
 * process-unique op id; each stage transition emits a TraceSpan into
 * the calling thread's ring, and cross-thread handoffs — a write's
 * dirty range being cleaned later by the background cleaner — record
 * the originating op id as srcOpId, so one write's full causal chain
 * (claim → lock → data_write → commit_fence → bitmap_apply → async
 * clean) is reconstructable from the export.
 *
 * Concurrency contract: pushSpan() touches only the calling thread's
 * ring (no locks, no shared RMW), so tracing is race-free under TSan.
 * exportJson()/snapshot() are quiescent-reader operations: they are
 * meant to run after workers finish (bench teardown, test join); a
 * concurrent writer can tear the ring slot being overwritten, which
 * costs one garbled span, never memory unsafety.
 *
 * Cost: with tracing disabled (the default) the only overhead on the
 * stats hot path is one relaxed atomic load per stage transition.
 * Enable with MGSP_TRACE=1 or trace::setEnabled(true); benches wire
 * this to --trace-json=FILE. Tracing rides on the stats plane, so it
 * also requires stats to be enabled (MGSP_STATS != 0).
 */
#ifndef MGSP_COMMON_TRACE_H
#define MGSP_COMMON_TRACE_H

#include <atomic>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mgsp {
namespace trace {

/** Span kind flags (TraceSpan::flags). */
inline constexpr u8 kSpanCleanRange = 1;  ///< one cleaned dirty range

/**
 * One closed interval of attributed work. stage == Stage::None marks
 * a whole-operation span (the parent of that op's stage spans).
 */
struct TraceSpan
{
    u64 opId = 0;       ///< owning operation (stats::OpTrace seq)
    u64 srcOpId = 0;    ///< causal source op (cleaner handoff); 0 = none
    u64 startNanos = 0; ///< monotonicNanos() at span open
    u64 endNanos = 0;
    u64 bytes = 0;      ///< device bytes stored during the span
    u32 threadId = 0;   ///< stats::currentThreadId() of the emitter
    stats::Stage stage = stats::Stage::None;
    stats::OpType op = stats::OpType::Write;
    u8 flags = 0;       ///< kSpan* bits
    bool ok = true;
};

namespace detail {
/** Backing flag for enabled(); do not touch directly. */
extern std::atomic<bool> gEnabledFlag;
}  // namespace detail

/**
 * Global runtime switch. Initialised from the environment
 * (`MGSP_TRACE=1` enables) and overridable via setEnabled().
 * Inline: this gate sits on the stats hot path, so it must compile
 * down to two relaxed loads, not a library call.
 */
inline bool
enabled()
{
    return detail::gEnabledFlag.load(std::memory_order_relaxed) &&
           stats::enabled();
}

void setEnabled(bool on);

/**
 * Per-thread ring capacity in spans (power of two). Read once at
 * first use from `MGSP_TRACE_RING` (rounded up to a power of two,
 * clamped to [1<<10, 1<<22]); default 1<<16.
 */
u32 spanRingCapacity();

/**
 * Appends @p span to the calling thread's ring, overwriting the
 * oldest span once the ring is full. Lock-free (thread-private ring;
 * the global ring list is mutated only on thread birth/death). No-op
 * when tracing is disabled.
 */
void pushSpan(const TraceSpan &span);

/** Spans currently retained across all rings. */
u64 spanCount();

/** Drops every retained span (bench reuse; callers quiesce). */
void clear();

/**
 * Copies every retained span out of the rings, oldest first per
 * thread (unsorted across threads). Quiescent-reader: see the file
 * comment.
 */
std::vector<TraceSpan> snapshot();

/**
 * Renders the retained spans as Chrome trace-event JSON ("X"
 * complete events, microsecond timestamps), loadable in Perfetto /
 * chrome://tracing. Whole-op spans and stage spans nest by time on
 * each thread track; cleaner handoffs additionally emit flow arrows
 * (s/t/f events keyed by the source op id) from the committing
 * write to every clean_range span that wrote its data back.
 */
std::string exportJson();

/**
 * Writes exportJson() to @p path (truncating). Returns false and
 * logs on I/O failure.
 */
bool exportJsonToFile(const std::string &path);

// ---- hot-path hooks (used by stats::OpTrace / device charging) ---

namespace detail {
/** Current thread's in-flight traced op id (0 = none). */
u64 currentOpId();
void setCurrentOpId(u64 id);

/** Byte accumulator for the calling thread's open span. */
extern thread_local u64 tlsSpanBytes;

/** Swaps the per-stage byte accumulator, returning the old value. */
u64 swapSpanBytes(u64 value);

/**
 * Adds device bytes to the open span of the calling thread. Inline
 * and unconditional by design: a plain thread-local add is cheaper
 * than gating on enabled() (two atomic loads) at every device store,
 * and a stale accumulator is harmless — OpTrace zeroes it whenever a
 * traced operation actually begins.
 */
inline void
addSpanBytes(u64 bytes)
{
    tlsSpanBytes += bytes;
}
}  // namespace detail

}  // namespace trace
}  // namespace mgsp

#endif  // MGSP_COMMON_TRACE_H
