/**
 * @file
 * Alignment arithmetic used throughout the log and block managers.
 *
 * All helpers require the alignment to be a power of two; this is
 * asserted in debug builds.
 */
#ifndef MGSP_COMMON_ALIGN_H
#define MGSP_COMMON_ALIGN_H

#include <cassert>
#include <cstddef>

#include "common/types.h"

namespace mgsp {

/** @return true iff @p x is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round @p x down to a multiple of power-of-two @p align. */
constexpr u64
alignDown(u64 x, u64 align)
{
    assert(isPowerOfTwo(align));
    return x & ~(align - 1);
}

/** Round @p x up to a multiple of power-of-two @p align. */
constexpr u64
alignUp(u64 x, u64 align)
{
    assert(isPowerOfTwo(align));
    return (x + align - 1) & ~(align - 1);
}

/** @return true iff @p x is a multiple of power-of-two @p align. */
constexpr bool
isAligned(u64 x, u64 align)
{
    assert(isPowerOfTwo(align));
    return (x & (align - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2Exact(u64 x)
{
    assert(isPowerOfTwo(x));
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Ceiling division. */
constexpr u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Round @p x up to the next power of two (x <= 2^63). */
constexpr u64
nextPowerOfTwo(u64 x)
{
    if (x <= 1)
        return 1;
    u64 p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

}  // namespace mgsp

#endif  // MGSP_COMMON_ALIGN_H
