#include "common/random.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "common/hash.h"

namespace mgsp {
namespace {

constexpr u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

double
zeta(u64 n, double theta)
{
    double sum = 0.0;
    for (u64 i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

}  // namespace

Rng::Rng(u64 seed)
{
    s0_ = mixHash64(seed);
    s1_ = mixHash64(s0_ ^ 0xDEADBEEFCAFEBABEull);
    if (s0_ == 0 && s1_ == 0)
        s1_ = 1;
}

u64
Rng::next()
{
    const u64 result = rotl(s0_ + s1_, 17) + s0_;
    const u64 t = s1_ ^ s0_;
    s0_ = rotl(s0_, 49) ^ t ^ (t << 21);
    s1_ = rotl(t, 28);
    return result;
}

u64
Rng::nextBelow(u64 bound)
{
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    u64 low = static_cast<u64>(m);
    if (low < bound) {
        u64 threshold = (0 - bound) % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<u64>(m);
        }
    }
    return static_cast<u64>(m >> 64);
}

u64
Rng::nextInRange(u64 lo, u64 hi)
{
    assert(lo <= hi);
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

void
Rng::fillBytes(void *buf, std::size_t size)
{
    u8 *p = static_cast<u8 *>(buf);
    while (size >= 8) {
        u64 v = next();
        std::memcpy(p, &v, 8);
        p += 8;
        size -= 8;
    }
    if (size > 0) {
        u64 v = next();
        std::memcpy(p, &v, size);
    }
}

std::vector<u8>
Rng::nextBytes(std::size_t len)
{
    std::vector<u8> out(len);
    fillBytes(out.data(), len);
    return out;
}

u64
Rng::nextZipf(u64 n, double theta)
{
    assert(n > 0);
    if (theta <= 0.0)
        return nextBelow(n);
    if (zipfN_ != n || zipfTheta_ != theta) {
        zipfN_ = n;
        zipfTheta_ = theta;
        zipfZetaN_ = zeta(n, theta);
        zipfAlpha_ = 1.0 / (1.0 - theta);
        double zeta2 = zeta(2, theta);
        zipfEta_ = (1.0 - std::pow(2.0 / static_cast<double>(n),
                                   1.0 - theta)) /
                   (1.0 - zeta2 / zipfZetaN_);
    }
    double u = nextDouble();
    double uz = u * zipfZetaN_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    u64 v = static_cast<u64>(
        static_cast<double>(n) *
        std::pow(zipfEta_ * u - zipfEta_ + 1.0, zipfAlpha_));
    return v >= n ? n - 1 : v;
}

}  // namespace mgsp
