/**
 * @file
 * Minimal spin locks used on hot paths where a futex round-trip would
 * dominate the cost being measured.
 */
#ifndef MGSP_COMMON_SPIN_LOCK_H
#define MGSP_COMMON_SPIN_LOCK_H

#include <atomic>
#include <thread>

#include "common/types.h"

namespace mgsp {

/** Architecture-friendly pause in spin loops. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/**
 * Bounded spin-then-yield backoff. Spinning briefly wins when the
 * holder is running on another core; yielding after that keeps
 * oversubscribed (or single-core) hosts from burning the holder's
 * timeslice — without it lock-contention results would measure the
 * scheduler, not the locks.
 */
class SpinBackoff
{
  public:
    void
    pause()
    {
        if (++spins_ < kSpinLimit) {
            cpuRelax();
        } else {
            spins_ = 0;
            std::this_thread::yield();
        }
    }

  private:
    static constexpr u32 kSpinLimit = 64;
    u32 spins_ = 0;
};

/** A test-and-test-and-set spin lock. Satisfies BasicLockable. */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock()
    {
        SpinBackoff backoff;
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire))
                return;
            while (flag_.load(std::memory_order_relaxed))
                backoff.pause();
        }
    }

    bool
    tryLock()
    {
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void lock_shared() = delete;

    void
    unlock()
    {
        flag_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> flag_{false};
};

/**
 * A writer-preferring reader-writer spin lock.
 *
 * State encoding: bit 0 = writer held; bit 1 = writer waiting;
 * bits 2.. = reader count. Writers set the waiting bit to starve out
 * new readers, which keeps write latency bounded under read-heavy load
 * (the situation in Fig. 9's mixed workloads).
 */
class RwSpinLock
{
  public:
    RwSpinLock() = default;
    RwSpinLock(const RwSpinLock &) = delete;
    RwSpinLock &operator=(const RwSpinLock &) = delete;

    void
    lockShared()
    {
        SpinBackoff backoff;
        for (;;) {
            u32 s = state_.load(std::memory_order_relaxed);
            if ((s & (kWriter | kWriterWaiting)) == 0) {
                if (state_.compare_exchange_weak(
                        s, s + kReaderUnit, std::memory_order_acquire,
                        std::memory_order_relaxed))
                    return;
            } else {
                backoff.pause();
            }
        }
    }

    bool
    tryLockShared()
    {
        u32 s = state_.load(std::memory_order_relaxed);
        while ((s & (kWriter | kWriterWaiting)) == 0) {
            if (state_.compare_exchange_weak(s, s + kReaderUnit,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed))
                return true;
        }
        return false;
    }

    void
    unlockShared()
    {
        state_.fetch_sub(kReaderUnit, std::memory_order_release);
    }

    void
    lock()
    {
        // Announce intent so new readers back off.
        state_.fetch_or(kWriterWaiting, std::memory_order_relaxed);
        SpinBackoff backoff;
        for (;;) {
            u32 s = state_.load(std::memory_order_relaxed);
            if ((s & kWriter) == 0 && (s >> kReaderShift) == 0) {
                u32 desired = (s & ~kWriterWaiting) | kWriter;
                if (state_.compare_exchange_weak(s, desired,
                                                 std::memory_order_acquire,
                                                 std::memory_order_relaxed))
                    return;
            } else {
                backoff.pause();
            }
        }
    }

    bool
    tryLock()
    {
        u32 expected = state_.load(std::memory_order_relaxed);
        if ((expected & kWriter) != 0 || (expected >> kReaderShift) != 0)
            return false;
        u32 desired = (expected & ~kWriterWaiting) | kWriter;
        return state_.compare_exchange_strong(expected, desired,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed);
    }

    void
    unlock()
    {
        state_.fetch_and(~kWriter, std::memory_order_release);
    }

  private:
    static constexpr u32 kWriter = 1u;
    static constexpr u32 kWriterWaiting = 2u;
    static constexpr u32 kReaderShift = 2;
    static constexpr u32 kReaderUnit = 1u << kReaderShift;

    std::atomic<u32> state_{0};
};

/** RAII guard for RwSpinLock shared mode. */
class SharedGuard
{
  public:
    explicit SharedGuard(RwSpinLock &lock) : lock_(lock)
    {
        lock_.lockShared();
    }
    ~SharedGuard() { lock_.unlockShared(); }
    SharedGuard(const SharedGuard &) = delete;
    SharedGuard &operator=(const SharedGuard &) = delete;

  private:
    RwSpinLock &lock_;
};

/** RAII guard for RwSpinLock exclusive mode. */
class ExclusiveGuard
{
  public:
    explicit ExclusiveGuard(RwSpinLock &lock) : lock_(lock) { lock_.lock(); }
    ~ExclusiveGuard() { lock_.unlock(); }
    ExclusiveGuard(const ExclusiveGuard &) = delete;
    ExclusiveGuard &operator=(const ExclusiveGuard &) = delete;

  private:
    RwSpinLock &lock_;
};

}  // namespace mgsp

#endif  // MGSP_COMMON_SPIN_LOCK_H
