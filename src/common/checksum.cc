#include "common/checksum.h"

#include <array>

namespace mgsp {
namespace {

/** Builds the 256-entry table for a reflected CRC with @p poly. */
template <typename T>
constexpr std::array<T, 256>
makeCrcTable(T poly)
{
    std::array<T, 256> table{};
    for (unsigned i = 0; i < 256; ++i) {
        T crc = static_cast<T>(i);
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

constexpr auto kCrc32cTable = makeCrcTable<u32>(0x82F63B78u);
constexpr auto kCrc64Table = makeCrcTable<u64>(0xC96C5795D7870F42ull);

}  // namespace

u32
crc32c(const void *data, std::size_t size, u32 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    u32 crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kCrc32cTable[(crc ^ p[i]) & 0xFF];
    return ~crc;
}

u64
crc64(const void *data, std::size_t size, u64 seed)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 crc = ~seed;
    for (std::size_t i = 0; i < size; ++i)
        crc = (crc >> 8) ^ kCrc64Table[(crc ^ p[i]) & 0xFF];
    return ~crc;
}

}  // namespace mgsp
