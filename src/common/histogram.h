/**
 * @file
 * Latency histograms and throughput accounting for the bench harness.
 */
#ifndef MGSP_COMMON_HISTOGRAM_H
#define MGSP_COMMON_HISTOGRAM_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mgsp {

/**
 * A log-scaled histogram of nanosecond values.
 *
 * Buckets are powers of two subdivided 16 ways, giving <= 6.25 %
 * relative quantile error across [1 ns, ~18 s]. Not thread-safe;
 * merge per-thread instances with merge().
 */
class Histogram
{
  public:
    Histogram();

    /** Records one sample. */
    void record(u64 value);

    /** Adds all samples of @p other into this histogram. */
    void merge(const Histogram &other);

    u64 count() const { return count_; }
    u64 min() const { return count_ ? min_ : 0; }
    u64 max() const { return max_; }
    double mean() const;

    /** Value at quantile @p q in [0, 1]. */
    u64 percentile(double q) const;

    /** One-line summary, e.g. for bench output. */
    std::string summary() const;

  private:
    static constexpr unsigned kSubBuckets = 16;
    static constexpr unsigned kBucketCount = 64 * kSubBuckets;

    static unsigned bucketFor(u64 value);
    static u64 bucketUpperBound(unsigned index);

    std::vector<u64> buckets_;
    u64 count_ = 0;
    u64 sum_ = 0;
    u64 min_ = ~0ull;
    u64 max_ = 0;
};

}  // namespace mgsp

#endif  // MGSP_COMMON_HISTOGRAM_H
