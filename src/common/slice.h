/**
 * @file
 * Non-owning byte ranges for I/O APIs.
 */
#ifndef MGSP_COMMON_SLICE_H
#define MGSP_COMMON_SLICE_H

#include <cassert>
#include <cstring>
#include <string>
#include <string_view>

#include "common/types.h"

namespace mgsp {

/** A read-only view of a byte range. */
class ConstSlice
{
  public:
    ConstSlice() : data_(nullptr), size_(0) {}
    ConstSlice(const void *data, std::size_t size)
        : data_(static_cast<const u8 *>(data)), size_(size)
    {
    }
    ConstSlice(std::string_view s) : ConstSlice(s.data(), s.size()) {}

    const u8 *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    u8
    operator[](std::size_t i) const
    {
        assert(i < size_);
        return data_[i];
    }

    /** Sub-range [off, off+len). */
    ConstSlice
    sub(std::size_t off, std::size_t len) const
    {
        assert(off + len <= size_);
        return ConstSlice(data_ + off, len);
    }

    std::string
    toString() const
    {
        return std::string(reinterpret_cast<const char *>(data_), size_);
    }

    bool
    operator==(const ConstSlice &o) const
    {
        return size_ == o.size_ &&
               (size_ == 0 || std::memcmp(data_, o.data_, size_) == 0);
    }

  private:
    const u8 *data_;
    std::size_t size_;
};

/** A mutable view of a byte range. */
class MutSlice
{
  public:
    MutSlice() : data_(nullptr), size_(0) {}
    MutSlice(void *data, std::size_t size)
        : data_(static_cast<u8 *>(data)), size_(size)
    {
    }

    u8 *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    MutSlice
    sub(std::size_t off, std::size_t len) const
    {
        assert(off + len <= size_);
        return MutSlice(data_ + off, len);
    }

    operator ConstSlice() const { return ConstSlice(data_, size_); }

  private:
    u8 *data_;
    std::size_t size_;
};

}  // namespace mgsp

#endif  // MGSP_COMMON_SLICE_H
