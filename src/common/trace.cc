/** @file Causal-trace span rings and Chrome trace-event export. */
#include "common/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "common/logging.h"

namespace mgsp {
namespace trace {
namespace {

bool envEnabled()
{
    const char *env = std::getenv("MGSP_TRACE");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
}

u32 ringCapacityFromEnv()
{
    u64 cap = u64{1} << 16;
    if (const char *env = std::getenv("MGSP_TRACE_RING")) {
        const u64 parsed = std::strtoull(env, nullptr, 10);
        if (parsed > 0)
            cap = parsed;
    }
    cap = std::clamp(cap, u64{1} << 10, u64{1} << 22);
    // Round up to a power of two so the ring index is a mask.
    u64 pow2 = 1;
    while (pow2 < cap)
        pow2 <<= 1;
    return static_cast<u32>(pow2);
}

/**
 * One thread's span ring. Unlike the stats OpRecord rings (small and
 * deliberately leaked), trace rings are megabyte-scale and the test
 * suites spawn hundreds of short-lived threads, so exited threads
 * return their ring to a freelist for the next thread to reuse; the
 * set of rings is bounded by the peak live thread count.
 */
struct SpanRing
{
    explicit SpanRing(u32 capacity)
        : spans(capacity), mask(capacity - 1)
    {
    }

    std::vector<TraceSpan> spans;
    u32 mask;
    /// Monotonic push count; slot = head & mask. Written only by the
    /// owning thread; read by the quiescent exporter.
    std::atomic<u64> head{0};
    SpanRing *next = nullptr;  ///< all-rings list link (immutable)
    std::atomic<SpanRing *> freeNext{nullptr};
};

/// Head of the list of every ring ever created (never removed).
std::atomic<SpanRing *> gAllRings{nullptr};
/// Rings whose owning thread exited, available for adoption.
std::mutex gFreeMutex;
SpanRing *gFreeList = nullptr;

SpanRing *acquireRing()
{
    {
        std::lock_guard<std::mutex> guard(gFreeMutex);
        if (gFreeList != nullptr) {
            SpanRing *ring = gFreeList;
            gFreeList = ring->freeNext.load(std::memory_order_relaxed);
            return ring;
        }
    }
    SpanRing *ring = new SpanRing(spanRingCapacity());
    SpanRing *head = gAllRings.load(std::memory_order_acquire);
    do {
        ring->next = head;
    } while (!gAllRings.compare_exchange_weak(head, ring,
                                              std::memory_order_release,
                                              std::memory_order_acquire));
    return ring;
}

void releaseRing(SpanRing *ring)
{
    std::lock_guard<std::mutex> guard(gFreeMutex);
    ring->freeNext.store(gFreeList, std::memory_order_relaxed);
    gFreeList = ring;
}

/** RAII TLS holder so a dying thread recycles its ring. */
struct RingHolder
{
    ~RingHolder()
    {
        if (ring != nullptr)
            releaseRing(ring);
    }
    SpanRing *ring = nullptr;
};

SpanRing &localRing()
{
    thread_local RingHolder holder;
    if (holder.ring == nullptr)
        holder.ring = acquireRing();
    return *holder.ring;
}

thread_local u64 tlsOpId = 0;

/** Appends one Chrome "X" (complete) event for @p span. */
void appendCompleteEvent(std::string *out, const TraceSpan &span)
{
    const char *name;
    const char *cat;
    if (span.flags & kSpanCleanRange) {
        name = "clean_range";
        cat = "clean";
    } else if (span.stage == stats::Stage::None) {
        name = stats::opTypeName(span.op);
        cat = "op";
    } else {
        name = stats::stageName(span.stage);
        cat = "stage";
    }
    char buf[384];
    // Chrome trace timestamps are microseconds (doubles); keep the
    // sub-microsecond precision with a fractional part.
    const double tsUs = static_cast<double>(span.startNanos) / 1000.0;
    const double durUs =
        static_cast<double>(span.endNanos - span.startNanos) / 1000.0;
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"op\":%llu",
        name, cat, span.threadId, tsUs, durUs,
        static_cast<unsigned long long>(span.opId));
    out->append(buf, static_cast<std::size_t>(n));
    if (span.srcOpId != 0) {
        n = std::snprintf(buf, sizeof(buf), ",\"src_op\":%llu",
                          static_cast<unsigned long long>(span.srcOpId));
        out->append(buf, static_cast<std::size_t>(n));
    }
    n = std::snprintf(buf, sizeof(buf), ",\"bytes\":%llu,\"ok\":%s}}",
                      static_cast<unsigned long long>(span.bytes),
                      span.ok ? "true" : "false");
    out->append(buf, static_cast<std::size_t>(n));
}

/** Appends one flow event (ph s/t/f) tying producer to consumer. */
void appendFlowEvent(std::string *out, char phase, u64 id, u32 tid,
                     u64 nanos, bool bindEnclosing)
{
    char buf[256];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ph\":\"%c\",\"name\":\"dirty-handoff\",\"cat\":\"causal\","
        "\"id\":%llu,\"pid\":0,\"tid\":%u,\"ts\":%.3f%s}",
        phase, static_cast<unsigned long long>(id), tid,
        static_cast<double>(nanos) / 1000.0,
        bindEnclosing ? ",\"bp\":\"e\"" : "");
    out->append(buf, static_cast<std::size_t>(n));
}

}  // namespace

namespace detail {
std::atomic<bool> gEnabledFlag{envEnabled()};
thread_local u64 tlsSpanBytes = 0;
}  // namespace detail

void setEnabled(bool on)
{
    detail::gEnabledFlag.store(on, std::memory_order_relaxed);
}

u32 spanRingCapacity()
{
    static const u32 capacity = ringCapacityFromEnv();
    return capacity;
}

void pushSpan(const TraceSpan &span)
{
    if (!enabled())
        return;
    SpanRing &ring = localRing();
    const u64 head = ring.head.load(std::memory_order_relaxed);
    ring.spans[head & ring.mask] = span;
    ring.head.store(head + 1, std::memory_order_release);
}

u64 spanCount()
{
    u64 total = 0;
    for (SpanRing *ring = gAllRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next) {
        total += std::min<u64>(ring->head.load(std::memory_order_acquire),
                               ring->mask + u64{1});
    }
    return total;
}

void clear()
{
    for (SpanRing *ring = gAllRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next)
        ring->head.store(0, std::memory_order_release);
}

std::vector<TraceSpan> snapshot()
{
    std::vector<TraceSpan> out;
    out.reserve(spanCount());
    for (SpanRing *ring = gAllRings.load(std::memory_order_acquire);
         ring != nullptr; ring = ring->next) {
        const u64 head = ring->head.load(std::memory_order_acquire);
        const u64 capacity = ring->mask + u64{1};
        const u64 count = std::min(head, capacity);
        for (u64 i = head - count; i < head; ++i)
            out.push_back(ring->spans[i & ring->mask]);
    }
    return out;
}

std::string exportJson()
{
    std::vector<TraceSpan> spans = snapshot();
    // Chrome tolerates unsorted events, but sorted output keeps the
    // export deterministic for tests and diffing.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceSpan &a, const TraceSpan &b) {
                         return a.startNanos < b.startNanos;
                     });

    // Producer op id -> (commit time, thread) for flow synthesis.
    // The op span's end is where the dirty range became durable and
    // visible to the cleaner, so arrows start there.
    struct Producer
    {
        u64 endNanos;
        u32 threadId;
    };
    std::unordered_map<u64, Producer> producers;
    std::unordered_map<u64, u32> consumerCount;
    for (const TraceSpan &span : spans) {
        if (!(span.flags & kSpanCleanRange) &&
            span.stage == stats::Stage::None)
            producers[span.opId] = {span.endNanos, span.threadId};
        if ((span.flags & kSpanCleanRange) && span.srcOpId != 0)
            ++consumerCount[span.srcOpId];
    }

    std::string out;
    out.reserve(spans.size() * 192 + 256);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };
    for (const TraceSpan &span : spans) {
        comma();
        appendCompleteEvent(&out, span);
    }
    // Flow arrows: one "s" at each producer's commit, then a "t" per
    // clean_range consumer, closed by "f" on the last one.
    std::unordered_map<u64, u32> seen;
    for (const TraceSpan &span : spans) {
        if (!(span.flags & kSpanCleanRange) || span.srcOpId == 0)
            continue;
        const auto producer = producers.find(span.srcOpId);
        if (producer == producers.end())
            continue;  // producer span already evicted from its ring
        u32 &done = seen[span.srcOpId];
        if (done == 0) {
            comma();
            appendFlowEvent(&out, 's', span.srcOpId,
                            producer->second.threadId,
                            producer->second.endNanos,
                            /*bindEnclosing=*/false);
        }
        ++done;
        const bool last = done == consumerCount[span.srcOpId];
        comma();
        appendFlowEvent(&out, last ? 'f' : 't', span.srcOpId,
                        span.threadId, span.startNanos,
                        /*bindEnclosing=*/last);
    }
    out += "]}";
    return out;
}

bool exportJsonToFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        MGSP_ERROR("trace: cannot open %s for writing", path.c_str());
        return false;
    }
    const std::string json = exportJson();
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok)
        MGSP_ERROR("trace: short write to %s", path.c_str());
    return ok;
}

namespace detail {

u64 currentOpId()
{
    return tlsOpId;
}

void setCurrentOpId(u64 id)
{
    tlsOpId = id;
}

u64 swapSpanBytes(u64 value)
{
    const u64 old = tlsSpanBytes;
    tlsSpanBytes = value;
    return old;
}

}  // namespace detail

}  // namespace trace
}  // namespace mgsp
