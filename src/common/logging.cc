#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "common/stats.h"

namespace mgsp {
namespace {

std::atomic<LogLevel> gLevel{LogLevel::Warn};

std::atomic<void (*)()> gPanicHooks[8] = {};
std::atomic<bool> gInPanic{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

/**
 * Formats the whole record into one buffer and emits it with a
 * single fwrite, so records from concurrent threads never interleave
 * mid-line (stderr is unbuffered: one fwrite = one write syscall).
 * The prefix carries a monotonic timestamp and the thread id so
 * concurrent traces can be ordered and attributed.
 */
void
vlog(const char *tag, const char *file, int line, const char *fmt,
     va_list args)
{
    const u64 now = monotonicNanos();
    char buf[2048];
    int n = std::snprintf(buf, sizeof(buf), "[%llu.%06llu t%u %s %s:%d] ",
                          static_cast<unsigned long long>(now / 1000000000),
                          static_cast<unsigned long long>(now % 1000000000) /
                              1000,
                          stats::currentThreadId(), tag, file, line);
    if (n < 0)
        n = 0;
    if (n < static_cast<int>(sizeof(buf)) - 1) {
        const int m = std::vsnprintf(buf + n, sizeof(buf) - n - 1, fmt,
                                     args);
        if (m > 0)
            n += std::min(m, static_cast<int>(sizeof(buf)) - n - 1);
    }
    buf[n++] = '\n';
    std::fwrite(buf, 1, static_cast<std::size_t>(n), stderr);
}

void
runPanicHooks()
{
    if (gInPanic.exchange(true, std::memory_order_acq_rel))
        return;  // a hook panicked; don't recurse
    for (std::atomic<void (*)()> &slot : gPanicHooks) {
        void (*hook)() = slot.load(std::memory_order_acquire);
        if (hook != nullptr)
            hook();
    }
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
addPanicHook(void (*hook)())
{
    for (std::atomic<void (*)()> &slot : gPanicHooks) {
        void (*expected)() = nullptr;
        if (slot.load(std::memory_order_acquire) == hook)
            return;  // already registered
        if (slot.compare_exchange_strong(expected, hook,
                                         std::memory_order_acq_rel))
            return;
    }
}

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(levelName(level), file, line, fmt, args);
    va_end(args);
}

void
fatalError(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("FATAL", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
panicError(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("PANIC", file, line, fmt, args);
    va_end(args);
    runPanicHooks();
    std::abort();
}

}  // namespace mgsp
