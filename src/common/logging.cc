#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mgsp {
namespace {

std::atomic<LogLevel> gLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

void
vlog(const char *tag, const char *file, int line, const char *fmt,
     va_list args)
{
    std::fprintf(stderr, "[%s %s:%d] ", tag, file, line);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    gLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return gLevel.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(levelName(level), file, line, fmt, args);
    va_end(args);
}

void
fatalError(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("FATAL", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

void
panicError(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlog("PANIC", file, line, fmt, args);
    va_end(args);
    std::abort();
}

}  // namespace mgsp
