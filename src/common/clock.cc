#include "common/clock.h"

#include <atomic>
#include <cstdlib>
#include <ctime>

#include "common/spin_lock.h"

namespace mgsp {
namespace {

std::atomic<bool> gDelayEnabled{[] {
    const char *env = std::getenv("MGSP_NO_DELAY");
    return !(env != nullptr && env[0] == '1');
}()};

}  // namespace

u64
monotonicNanos()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<u64>(ts.tv_sec) * 1000000000ull +
           static_cast<u64>(ts.tv_nsec);
}

void
spinDelay(u64 nanos)
{
    if (nanos == 0 || !gDelayEnabled.load(std::memory_order_relaxed))
        return;
    const u64 deadline = monotonicNanos() + nanos;
    while (monotonicNanos() < deadline)
        cpuRelax();
}

void
setDelayInjectionEnabled(bool enabled)
{
    gDelayEnabled.store(enabled, std::memory_order_relaxed);
}

bool
delayInjectionEnabled()
{
    return gDelayEnabled.load(std::memory_order_relaxed);
}

}  // namespace mgsp
