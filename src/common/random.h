/**
 * @file
 * Deterministic pseudo-random generation for workloads and tests.
 *
 * Xoroshiro128++ — fast, high-quality, and seedable so every workload
 * and crash-injection test is reproducible from a single seed.
 */
#ifndef MGSP_COMMON_RANDOM_H
#define MGSP_COMMON_RANDOM_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace mgsp {

/** Xoroshiro128++ PRNG. Not thread-safe; use one per thread. */
class Rng
{
  public:
    /** Seeds the state via SplitMix64 so any seed (even 0) is valid. */
    explicit Rng(u64 seed = 0x853C49E6748FEA9Bull);

    /** Next 64 uniformly random bits. */
    u64 next();

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    u64 nextBelow(u64 bound);

    /** Uniform integer in [lo, hi]. */
    u64 nextInRange(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p = 0.5);

    /** Fills @p buf with random bytes. */
    void fillBytes(void *buf, std::size_t size);

    /** Random ASCII string of length @p len (a-z0-9). */
    std::vector<u8> nextBytes(std::size_t len);

    /**
     * Zipfian value in [0, n) with skew @p theta (0 = uniform-ish,
     * 0.99 = classic YCSB skew). Uses the Gray et al. rejection-free
     * method with cached constants for a fixed n.
     */
    u64 nextZipf(u64 n, double theta);

  private:
    u64 s0_;
    u64 s1_;

    // Cached Zipf constants (recomputed when n or theta changes).
    u64 zipfN_ = 0;
    double zipfTheta_ = -1.0;
    double zipfZetaN_ = 0.0;
    double zipfAlpha_ = 0.0;
    double zipfEta_ = 0.0;
};

}  // namespace mgsp

#endif  // MGSP_COMMON_RANDOM_H
