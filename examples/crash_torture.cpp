/**
 * @file
 * Crash-torture demo: hammers an MGSP file from a writer thread
 * while repeatedly capturing crash images with random cache-eviction
 * behaviour, recovering each one, and verifying that every recovered
 * state is a clean prefix of acked operations plus at most one
 * atomic in-flight write.
 *
 * This is the library's crash-consistency argument made executable;
 * run it with different seeds to explore different interleavings:
 *
 *   ./build/examples/crash_torture [seed] [rounds]
 */
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "mgsp/mgsp_fs.h"

using namespace mgsp;

namespace {

constexpr u64 kFileSize = 64 * KiB;

struct Op
{
    u64 off;
    std::vector<u8> data;
};

std::vector<u8>
applyOps(const std::vector<Op> &plan, u64 count)
{
    std::vector<u8> bytes(kFileSize, 0);
    for (u64 i = 0; i < count; ++i) {
        const Op &op = plan[i];
        std::copy(op.data.begin(), op.data.end(),
                  bytes.begin() + op.off);
    }
    return bytes;
}

}  // namespace

int
main(int argc, char **argv)
{
    const u64 seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    const int rounds = argc > 2 ? std::atoi(argv[2]) : 10;

    MgspConfig config;
    config.arenaSize = 16 * MiB;
    auto device = std::make_shared<PmemDevice>(config.arenaSize,
                                               PmemDevice::Mode::Tracked);
    auto fs = MgspFs::format(device, config);
    if (!fs.isOk())
        return 1;
    auto file = (*fs)->open("torture.dat", OpenOptions::Create(kFileSize));
    if (!file.isOk())
        return 1;
    {
        std::vector<u8> zeros(kFileSize, 0);
        (void)(*file)->pwrite(0, ConstSlice(zeros.data(), zeros.size()));
    }

    // A deterministic plan of unaligned, overlapping writes.
    Rng rng(seed);
    std::vector<Op> plan;
    for (int i = 0; i < 20000; ++i) {
        Op op;
        const u64 len = rng.nextInRange(1, 12 * KiB);
        op.off = rng.nextBelow(kFileSize - len);
        op.data = rng.nextBytes(len);
        plan.push_back(std::move(op));
    }

    std::atomic<u64> acked{0};
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (u64 i = 0; i < plan.size() && !stop.load(); ++i) {
            if (!(*file)
                     ->pwrite(plan[i].off,
                              ConstSlice(plan[i].data.data(),
                                         plan[i].data.size()))
                     .isOk())
                break;
            acked.store(i + 1, std::memory_order_release);
        }
        stop.store(true);
    });

    Rng crash_rng(seed ^ 0xDEAD);
    int ok = 0, checked = 0;
    while (checked < rounds && !stop.load()) {
        const u64 before = acked.load(std::memory_order_acquire);
        const double evict = crash_rng.nextDouble();
        CrashImage image = device->captureCrashImage(crash_rng, evict);
        ++checked;

        auto revived = std::make_shared<PmemDevice>(
            image, PmemDevice::Mode::Flat);
        auto recovered = MgspFs::mount(revived, config);
        if (!recovered.isOk()) {
            std::printf("round %d: MOUNT FAILED: %s\n", checked,
                        recovered.status().toString().c_str());
            continue;
        }
        auto reopened = (*recovered)->open("torture.dat", OpenOptions{});
        if (!reopened.isOk()) {
            std::printf("round %d: OPEN FAILED\n", checked);
            continue;
        }
        std::vector<u8> got((*reopened)->size());
        if (!got.empty())
            (void)(*reopened)->pread(0, MutSlice(got.data(), got.size()));
        got.resize(kFileSize, 0);

        // Accept any prefix in [before, now+1] (the writer advanced
        // while we captured; each op is atomic).
        const u64 now = acked.load(std::memory_order_acquire);
        bool matched = false;
        u64 matched_at = 0;
        for (u64 k = before; k <= std::min<u64>(now + 1, plan.size());
             ++k) {
            if (got == applyOps(plan, k)) {
                matched = true;
                matched_at = k;
                break;
            }
        }
        std::printf("round %2d: evict=%.2f acked=[%llu..%llu] -> %s",
                    checked, evict,
                    static_cast<unsigned long long>(before),
                    static_cast<unsigned long long>(now),
                    matched ? "consistent" : "CORRUPTED!");
        if (matched) {
            std::printf(" (prefix %llu)",
                        static_cast<unsigned long long>(matched_at));
            ++ok;
        }
        std::printf("\n");
    }
    stop.store(true);
    writer.join();
    std::printf("\n%d/%d crash states recovered consistently\n", ok,
                checked);
    return ok == checked ? 0 : 1;
}
