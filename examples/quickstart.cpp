/**
 * @file
 * Quickstart: create an MGSP file system on an emulated PM device,
 * perform failure-atomic writes, read them back, simulate a crash,
 * and recover.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [--stats-json=FILE]
 *
 * With --stats-json the final observability snapshot (per-stage
 * latencies, NVM write amplification per layer, op latencies) is
 * also written to FILE as JSON.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "common/random.h"
#include "mgsp/mgsp_fs.h"

using namespace mgsp;

int
main(int argc, char **argv)
{
    std::string stats_json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            stats_json_path = arg.substr(strlen("--stats-json="));
        } else if (arg == "--stats-json" && i + 1 < argc) {
            stats_json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: quickstart [--stats-json=FILE]\n");
            return 2;
        }
    }

    // 1. An emulated persistent-memory device. Tracked mode models
    //    x86 persistence exactly: a store survives a crash only after
    //    flush+fence (or lucky cache eviction).
    MgspConfig config;
    config.arenaSize = 64 * MiB;
    auto device = std::make_shared<PmemDevice>(config.arenaSize,
                                               PmemDevice::Mode::Tracked);

    // 2. Format and mount MGSP.
    auto fs = MgspFs::format(device, config);
    if (!fs.isOk()) {
        std::printf("format failed: %s\n",
                    fs.status().toString().c_str());
        return 1;
    }

    // 3. Every pwrite is synchronously durable AND atomic: no fsync
    //    needed, and a crash can never expose a half-applied write.
    auto file = (*fs)->open("notes.txt", OpenOptions::Create(1 * MiB));
    if (!file.isOk()) {
        std::printf("create failed: %s\n",
                    file.status().toString().c_str());
        return 1;
    }
    const std::string v1 = "balance=1000 checksum=OK";
    const std::string v2 = "balance=0042 checksum=OK";
    (void)(*file)->pwrite(0, ConstSlice(v1));
    (void)(*file)->pwrite(0, ConstSlice(v2));  // atomic overwrite

    std::string out(v2.size(), '\0');
    auto n = (*file)->pread(0, MutSlice(out.data(), out.size()));
    std::printf("read back (%llu bytes): %s\n",
                static_cast<unsigned long long>(*n), out.c_str());

    // 4. Crash! Everything not yet durable is dropped (eviction
    //    probability 0 = the adversarial case).
    Rng rng(2026);
    CrashImage image = device->captureCrashImage(rng, /*evict=*/0.0);
    std::printf("crash image captured (%zu bytes of media)\n",
                image.media.size());

    // 5. Recover on a fresh device built from the crash image.
    auto revived =
        std::make_shared<PmemDevice>(image, PmemDevice::Mode::Flat);
    auto recovered = MgspFs::mount(revived, config);
    if (!recovered.isOk()) {
        std::printf("mount failed: %s\n",
                    recovered.status().toString().c_str());
        return 1;
    }
    const RecoveryReport &report = (*recovered)->recoveryReport();
    std::printf("recovered: %u metadata-log entries replayed, "
                "%u node records scanned, %.2f ms\n",
                report.liveEntriesReplayed, report.recordsScanned,
                report.nanos * 1e-6);

    auto file2 = (*recovered)->open("notes.txt", OpenOptions{});
    std::string out2(v2.size(), '\0');
    (void)(*file2)->pread(0, MutSlice(out2.data(), out2.size()));
    std::printf("after crash+recovery: %s\n", out2.c_str());
    std::printf("%s\n", out2 == v2 ? "OK: the atomic write survived"
                                   : "BUG: data lost");

    // 6. The observability snapshot: every stage of every write above
    //    (claim/lock/data-write/commit-fence/bitmap-apply), with the
    //    NVM bytes each stage cost.
    const MgspStatsReport stats = (*recovered)->statsReport();
    std::printf("\n%s", stats.text.c_str());
    if (!stats_json_path.empty()) {
        std::FILE *f = std::fopen(stats_json_path.c_str(), "we");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n",
                         stats_json_path.c_str());
            return 1;
        }
        std::fprintf(f, "%s\n", stats.json.c_str());
        std::fclose(f);
        std::printf("stats JSON written to %s\n",
                    stats_json_path.c_str());
    }
    return out2 == v2 ? 0 : 1;
}
