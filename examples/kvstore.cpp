/**
 * @file
 * A durable key-value store in ~100 lines, built directly on MGSP's
 * failure-atomic file API — no write-ahead log of its own.
 *
 * Records live in fixed slots; each put() is a single pwrite of the
 * slot. Because MGSP makes every write atomic and synchronous, the
 * store needs no journal, no double write and no fsync: exactly the
 * application pattern the paper's SQLite journal-OFF experiments
 * argue for.
 */
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "common/hash.h"
#include "mgsp/mgsp_fs.h"

using namespace mgsp;

namespace {

/** Fixed-slot hash table over one MGSP file. */
class KvStore
{
  public:
    static constexpr u64 kSlots = 4096;
    static constexpr u64 kKeyMax = 64;
    static constexpr u64 kValueMax = 160;

    explicit KvStore(std::unique_ptr<File> file)
        : file_(std::move(file))
    {
    }

    bool
    put(const std::string &key, const std::string &value)
    {
        if (key.empty() || key.size() > kKeyMax ||
            value.size() > kValueMax)
            return false;
        Slot slot{};
        slot.used = 1;
        slot.keyLen = static_cast<u16>(key.size());
        slot.valueLen = static_cast<u16>(value.size());
        std::memcpy(slot.key, key.data(), key.size());
        std::memcpy(slot.value, value.data(), value.size());
        // One atomic write; a crash leaves either the old record or
        // the new one, never a mixture.
        for (u64 probe = 0; probe < kSlots; ++probe) {
            const u64 idx = slotFor(key, probe);
            Slot current;
            if (!load(idx, &current))
                return false;
            if (!current.used || keyEquals(current, key))
                return file_->pwrite(idx * sizeof(Slot),
                                     ConstSlice(&slot, sizeof(slot)))
                    .isOk();
        }
        return false;  // table full
    }

    std::optional<std::string>
    get(const std::string &key)
    {
        for (u64 probe = 0; probe < kSlots; ++probe) {
            const u64 idx = slotFor(key, probe);
            Slot slot;
            if (!load(idx, &slot) || !slot.used)
                return std::nullopt;
            if (keyEquals(slot, key))
                return std::string(slot.value, slot.valueLen);
        }
        return std::nullopt;
    }

  private:
    struct Slot
    {
        u8 used;
        u8 pad;
        u16 keyLen;
        u16 valueLen;
        u16 pad2;
        char key[kKeyMax];
        char value[kValueMax];
    };

    static u64
    slotFor(const std::string &key, u64 probe)
    {
        return (hashBytes(key.data(), key.size()) + probe) % kSlots;
    }

    static bool
    keyEquals(const Slot &slot, const std::string &key)
    {
        return slot.keyLen == key.size() &&
               std::memcmp(slot.key, key.data(), key.size()) == 0;
    }

    bool
    load(u64 idx, Slot *out)
    {
        auto n = file_->pread(idx * sizeof(Slot),
                              MutSlice(out, sizeof(Slot)));
        if (!n.isOk())
            return false;
        if (*n < sizeof(Slot))
            std::memset(reinterpret_cast<u8 *>(out) + *n, 0,
                        sizeof(Slot) - *n);
        return true;
    }

    std::unique_ptr<File> file_;
};

}  // namespace

int
main()
{
    MgspConfig config;
    config.arenaSize = 64 * MiB;
    auto device = std::make_shared<PmemDevice>(config.arenaSize);
    auto fs = MgspFs::format(device, config);
    if (!fs.isOk())
        return 1;
    auto file = (*fs)->open("kv.dat", OpenOptions::Create(8 * MiB));
    if (!file.isOk())
        return 1;
    device->stats().reset();  // don't count format/create in the demo

    KvStore kv(std::move(*file));
    kv.put("alice", "likes shadow paging");
    kv.put("bob", "prefers redo logs");
    kv.put("carol", "uses fine-grained locks");
    kv.put("bob", "was converted to shadow logs");  // atomic update

    for (const char *key : {"alice", "bob", "carol", "dave"}) {
        auto value = kv.get(key);
        std::printf("%-6s -> %s\n", key,
                    value ? value->c_str() : "(not found)");
    }

    // Stats: how many device bytes did those puts cost?
    std::printf("\ndevice bytes written: %llu (logical %llu) — no "
                "journal, no double write\n",
                static_cast<unsigned long long>(
                    device->stats().bytesWritten.load()),
                static_cast<unsigned long long>(
                    (*fs)->logicalBytesWritten()));
    return 0;
}
