/**
 * @file
 * Bank transfers on minidb over MGSP with journal_mode=OFF — the
 * paper's Fig. 11b/12 configuration: the database trusts the file
 * system for crash consistency and skips its own journal.
 *
 * Runs a batch of transfers, audits the conservation invariant
 * (total balance constant), then compares the commit cost against
 * WAL mode on the same engine.
 */
#include <cstdio>
#include <cstring>

#include "common/random.h"
#include "minidb/db.h"
#include "mgsp/mgsp_fs.h"

using namespace mgsp;
using minidb::Database;
using minidb::DbOptions;
using minidb::JournalMode;

namespace {

constexpr i64 kAccounts = 500;
constexpr i64 kInitialBalance = 1000;

i64
balanceOf(Database *db, i64 account)
{
    auto raw = db->get("accounts", account);
    if (!raw.isOk() || raw->size() != 8)
        return -1;
    i64 balance;
    std::memcpy(&balance, raw->data(), 8);
    return balance;
}

bool
setBalance(Database *db, i64 account, i64 balance)
{
    return db->update("accounts", account, ConstSlice(&balance, 8))
        .isOk();
}

/** Returns transactions per second, or -1 on failure. */
double
runTransfers(FileSystem *fs, JournalMode journal, const char *db_name)
{
    DbOptions options;
    options.journal = journal;
    options.fileCapacity = 16 * MiB;
    auto db = Database::open(fs, db_name, options);
    if (!db.isOk()) {
        std::printf("open failed: %s\n", db.status().toString().c_str());
        return -1;
    }
    if (!(*db)->createTable("accounts").isOk())
        return -1;
    if (!(*db)->begin().isOk())
        return -1;
    for (i64 a = 0; a < kAccounts; ++a) {
        i64 balance = kInitialBalance;
        if (!(*db)->insert("accounts", a, ConstSlice(&balance, 8)).isOk())
            return -1;
    }
    if (!(*db)->commit().isOk())
        return -1;

    Rng rng(7);
    constexpr int kTransfers = 3000;
    Stopwatch timer;
    for (int t = 0; t < kTransfers; ++t) {
        const i64 from = static_cast<i64>(rng.nextBelow(kAccounts));
        const i64 to = static_cast<i64>(rng.nextBelow(kAccounts));
        const i64 amount = static_cast<i64>(rng.nextInRange(1, 50));
        if (from == to)
            continue;
        // One multi-row transaction: both updates commit atomically.
        if (!(*db)->begin().isOk())
            return -1;
        setBalance(db->get(), from, balanceOf(db->get(), from) - amount);
        setBalance(db->get(), to, balanceOf(db->get(), to) + amount);
        if (!(*db)->commit().isOk())
            return -1;
    }
    const double seconds = timer.elapsedSeconds();

    // Audit: money is conserved.
    i64 total = 0;
    for (i64 a = 0; a < kAccounts; ++a)
        total += balanceOf(db->get(), a);
    const i64 expected = kAccounts * kInitialBalance;
    std::printf("  audit: total=%lld expected=%lld  %s\n",
                static_cast<long long>(total),
                static_cast<long long>(expected),
                total == expected ? "CONSERVED" : "VIOLATED");
    return kTransfers / seconds;
}

}  // namespace

int
main()
{
    MgspConfig config;
    config.arenaSize = 128 * MiB;
    auto device = std::make_shared<PmemDevice>(config.arenaSize);
    auto fs = MgspFs::format(device, config);
    if (!fs.isOk())
        return 1;

    std::printf("journal_mode=OFF on MGSP (FS-level atomicity):\n");
    const double off_tps =
        runTransfers(fs->get(), JournalMode::Off, "bank_off.db");
    std::printf("  %.0f transfers/s\n\n", off_tps);

    std::printf("journal_mode=WAL on MGSP (database journals too):\n");
    const double wal_tps =
        runTransfers(fs->get(), JournalMode::Wal, "bank_wal.db");
    std::printf("  %.0f transfers/s\n\n", wal_tps);

    if (off_tps > 0 && wal_tps > 0) {
        std::printf("OFF/WAL speedup on MGSP: %.2fx — the database's "
                    "own journal became\nredundant work because every "
                    "page write below is already atomic.\n",
                    off_tps / wal_tps);
    }
    return 0;
}
